"""Multimodel support: parent/offspring cell hierarchies (§3.3.2).

openCARP lets several models interact on the same tissue: "Offspring
cells are allowed to access and modify the content (or state) of their
parent ... We support this feature by conditionally accessing data
from the parent through MLIR gather and scatter operations that also
handle such conditions.  If the parent information cannot be found, it
falls through the common local variable storage."

A *plugin kernel* is a limpetMLIR compute kernel whose external reads
go through a per-cell parent map:

* ``parent_map[i] >= 0`` — lane i reads ``Vm`` from (and accumulates its
  current into) the parent cell ``parent_map[i]``;
* ``parent_map[i] < 0``  — lane i falls through to its own external
  arrays.

The vector path uses masked ``vector.gather``/``vector.scatter``; the
accumulation is read-modify-write so the plugin *adds* its current to
whatever the parent model already computed.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..frontend.model import IonicModel
from ..ir.builder import IRBuilder
from ..ir.core import Module, Value
from ..ir.dialects import (arith, func as func_dialect, omp, scf,
                           vector as vector_dialect)
from ..ir.types import f64, i1, index, memref_of
from .common import BackendMode, ExprEmitter, GeneratedKernel, KernelSpec
from .integrators import emit_state_updates
from .layout import aosoa
from .limpet_mlir import _load_states, _store_states
from .lut import declare_interp_functions, emit_vector_interp, LUT_MEMREF

STATE_MEMREF = memref_of(f64)
EXT_MEMREF = memref_of(f64)
MAP_MEMREF = memref_of(index)


def generate_plugin(model: IonicModel, width: int = 8,
                    use_lut: bool = True,
                    function_name: Optional[str] = None) -> GeneratedKernel:
    """Generate a vectorized plugin kernel with parent indirection.

    Signature adds, after the standard arguments, one ``parent_map``
    memref plus one ``parent_<ext>`` memref per external variable.
    """
    if model.foreign_functions:
        from .common import UnsupportedModelError
        raise UnsupportedModelError(
            f"model {model.name}: foreign function(s) "
            f"{sorted(model.foreign_functions)} cannot be vectorized in a "
            f"plugin kernel; use the baseline backend")
    if model.promoted_params:
        from .common import UnsupportedModelError
        raise UnsupportedModelError(
            f"model {model.name}: promoted parameter(s) "
            f"{sorted(model.promoted_params)} are not supported by "
            f"plugin kernels")
    layout = aosoa(model.n_states, width)
    spec = KernelSpec(model=model, mode=BackendMode.LIMPET_MLIR, width=width,
                      layout=layout, use_lut=use_lut,
                      function_name=function_name
                      or f"compute_plugin_{model.name}")
    module = Module(f"{model.name}_plugin")
    if spec.use_lut and model.lut_tables:
        declare_interp_functions(module, model, vectorized=True, width=width)

    arg_types = [index, index, f64, f64, STATE_MEMREF]
    arg_types += [EXT_MEMREF] * len(model.externals)
    if spec.use_lut:
        arg_types += [LUT_MEMREF] * len(model.lut_tables)
    arg_names = spec.argument_names()
    arg_types.append(MAP_MEMREF)
    arg_names = list(arg_names) + ["parent_map"]
    for ext in model.externals:
        arg_types.append(EXT_MEMREF)
        arg_names.append(f"parent_{ext}")

    kernel = func_dialect.func(module, spec.function_name, arg_types, [],
                               arg_hints=arg_names)
    args = dict(zip(arg_names, kernel.args))
    b = IRBuilder(kernel.entry)

    step = b.constant(width, index)
    n_states = b.constant(model.n_states, index)
    dt_vec = vector_dialect.broadcast(b, args["dt"], width)

    par = omp.parallel(b, schedule="static")
    with b.at_end_of(par.body):
        b.set_insertion_point_before(par.body.terminator)
        loop = scf.for_op(b, args["start"], args["end"], step, iv_hint="i")
        loop.op.attributes.update({"cell_loop": True,
                                   "vector_width": width,
                                   "layout": str(layout),
                                   "parallel": True})
        with b.at_end_of(loop.body):
            i = loop.induction_var
            env: Dict[str, Value] = {}
            # parent indices for this vector of cells (contiguous load)
            parent_idx = vector_dialect.load(b, args["parent_map"], [i],
                                             width)
            zero_idx = vector_dialect.broadcast(b, b.constant(0, index),
                                                width)
            has_parent = arith.cmpi(b, "sge", parent_idx, zero_idx)
            # externals: masked gather from the parent, fall through to
            # the local external array otherwise
            for ext in model.externals:
                local = vector_dialect.load(b, args[f"{ext}_ext"], [i],
                                            width)
                env[ext] = vector_dialect.gather(
                    b, args[f"parent_{ext}"], parent_idx,
                    mask=has_parent, pass_thru=local)
            _load_states(b, spec, args["sv"], i, n_states, args["end"], env)
            lut_served = set()
            if spec.use_lut:
                for table in model.lut_tables:
                    emit_vector_interp(b, table, args[f"lut_{table.var}"],
                                       env[table.var], env, width)
                    lut_served.update(table.column_names)
            emitter = ExprEmitter(b, env, width=width)
            for const_name, const_value in {**model.params,
                                            **model.folded_constants}.items():
                env[const_name] = emitter._const(const_value)
            for comp in model.computations:
                if comp.target in lut_served:
                    continue
                env[comp.target] = emitter.emit(comp.expr)
            new_values = emit_state_updates(b, model, env, width=width,
                                            dt=dt_vec)
            _store_states(b, spec, args["sv"], i, n_states, args["end"], new_values)
            # outputs: ACCUMULATE into the parent (read-modify-write
            # masked gather/scatter); unparented lanes write locally.
            for ext in model.outputs:
                zero_f = vector_dialect.broadcast(
                    b, b.constant(0.0, f64), width)
                parent_now = vector_dialect.gather(
                    b, args[f"parent_{ext}"], parent_idx,
                    mask=has_parent, pass_thru=zero_f)
                summed = arith.addf(b, parent_now, env[ext])
                vector_dialect.scatter(b, summed, args[f"parent_{ext}"],
                                       parent_idx, mask=has_parent)
                # fall-through lanes keep their own storage up to date
                local_mask = b.create(
                    "arith.xori", [has_parent,
                                   _true_vector(b, width)],
                    [has_parent.type]).result
                own_now = vector_dialect.load(b, args[f"{ext}_ext"], [i],
                                              width)
                merged = arith.select(b, local_mask, env[ext], own_now)
                vector_dialect.store(b, merged, args[f"{ext}_ext"], [i])
            scf.yield_op(b)
    func_dialect.ret(b)
    kernel_spec_args = list(arg_names)
    generated = GeneratedKernel(module=module, spec=spec, layout=layout)
    generated.plugin_arg_names = kernel_spec_args  # type: ignore[attr-defined]
    return generated


def _true_vector(b: IRBuilder, width: int) -> Value:
    return vector_dialect.broadcast(b, b.constant(True, i1), width)
