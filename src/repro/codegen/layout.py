"""State-variable data layouts (paper §3.4.1).

openCARP stores each cell's state variables contiguously (an
array-of-structures, AoS).  limpetMLIR's data-layout transformation
rearranges the same state variable of ``block`` successive cells
consecutively — array-of-structures-of-arrays (AoSoA) — so a vector of
cells is loaded with one contiguous hardware load instead of a gather.

The layout object answers one question for both the code generators and
the runtime: *where does (cell i, state slot s) live in the flat state
buffer?*
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class LayoutKind(enum.Enum):
    AOS = "aos"
    SOA = "soa"
    AOSOA = "aosoa"


@dataclass(frozen=True)
class Layout:
    """A concrete layout for ``n_states`` state variables.

    ``block`` is only meaningful for AoSoA; it equals the SIMD width in
    limpetMLIR's transformation.
    """

    kind: LayoutKind
    n_states: int
    block: int = 1

    def __post_init__(self) -> None:
        if self.n_states < 0:
            raise ValueError("n_states must be >= 0")
        if self.kind is LayoutKind.AOSOA and self.block < 1:
            raise ValueError("AoSoA requires a positive block size")

    # -- size -------------------------------------------------------------------

    def padded_cells(self, n_cells: int) -> int:
        """Cell count rounded up to a whole number of blocks."""
        if self.kind is LayoutKind.AOSOA:
            blocks = -(-n_cells // self.block)
            return blocks * self.block
        return n_cells

    def buffer_size(self, n_cells: int) -> int:
        return self.padded_cells(n_cells) * self.n_states

    # -- addressing ----------------------------------------------------------------

    def offset(self, cell: int, slot: int, n_cells: int) -> int:
        """Flat index of (cell, slot); ``n_cells`` is the allocated count."""
        if not 0 <= slot < max(self.n_states, 1):
            raise IndexError(f"state slot {slot} out of range")
        if self.kind is LayoutKind.AOS:
            return cell * self.n_states + slot
        if self.kind is LayoutKind.SOA:
            return slot * self.padded_cells(n_cells) + cell
        block_idx, lane = divmod(cell, self.block)
        return (block_idx * self.n_states * self.block
                + slot * self.block + lane)

    def offsets(self, cells: np.ndarray, slot: int,
                n_cells: int) -> np.ndarray:
        """Vectorized :meth:`offset` for an array of cell indices."""
        cells = np.asarray(cells, dtype=np.int64)
        if self.kind is LayoutKind.AOS:
            return cells * self.n_states + slot
        if self.kind is LayoutKind.SOA:
            return slot * self.padded_cells(n_cells) + cells
        block_idx, lane = np.divmod(cells, self.block)
        return (block_idx * self.n_states * self.block
                + slot * self.block + lane)

    # -- properties the code generators key on -------------------------------------------

    def vector_load_is_contiguous(self, width: int) -> bool:
        """True when ``width`` consecutive cells of one slot are contiguous.

        This is the whole point of the AoSoA transformation: with
        ``block == width`` a lane-per-cell vector load is one contiguous
        load; under AoS it must be a gather (stride = n_states), and
        under SoA it is contiguous for any width.
        """
        if self.kind is LayoutKind.SOA:
            return True
        if self.kind is LayoutKind.AOSOA:
            return self.block >= width and self.block % width == 0
        return self.n_states == 1

    @property
    def gather_stride(self) -> int:
        """Element stride between the same slot of consecutive cells (AoS)."""
        return self.n_states if self.kind is LayoutKind.AOS else 1

    def __str__(self) -> str:
        if self.kind is LayoutKind.AOSOA:
            return f"aosoa(block={self.block})"
        return self.kind.value


def aos(n_states: int) -> Layout:
    """openCARP's original array-of-structures layout."""
    return Layout(LayoutKind.AOS, n_states)


def soa(n_states: int) -> Layout:
    """Structure-of-arrays: fully transposed (contiguous but far apart)."""
    return Layout(LayoutKind.SOA, n_states)


def aosoa(n_states: int, block: int) -> Layout:
    """limpetMLIR's array-of-structures-of-blocks layout (§3.4.1)."""
    return Layout(LayoutKind.AOSOA, n_states, block)


def pack_state(values: np.ndarray, layout: Layout) -> np.ndarray:
    """Pack a (n_cells, n_states) matrix into a flat buffer per ``layout``."""
    n_cells, n_states = values.shape
    if n_states != layout.n_states:
        raise ValueError(f"expected {layout.n_states} states, got {n_states}")
    buffer = np.zeros(layout.buffer_size(n_cells), dtype=np.float64)
    cells = np.arange(n_cells)
    for slot in range(n_states):
        buffer[layout.offsets(cells, slot, n_cells)] = values[:, slot]
    return buffer


def unpack_state(buffer: np.ndarray, layout: Layout,
                 n_cells: int) -> np.ndarray:
    """Inverse of :func:`pack_state`: recover the (n_cells, n_states) view."""
    values = np.empty((n_cells, layout.n_states), dtype=np.float64)
    cells = np.arange(n_cells)
    for slot in range(layout.n_states):
        values[:, slot] = buffer[layout.offsets(cells, slot, n_cells)]
    return values
