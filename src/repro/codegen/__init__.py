"""Code generators: baseline (limpetC++ analog), limpetMLIR, icc_simd."""

from .common import BackendMode, ExprEmitter, GeneratedKernel, KernelSpec
from .layout import Layout, LayoutKind, aos, aosoa, soa, pack_state, unpack_state
from .limpet_c import generate_baseline
from .limpet_mlir import generate_icc_simd, generate_limpet_mlir
from .multimodel import generate_plugin
from .legality import (Finding, LegalityReport, check_population_legality,
                       check_simd_legality)
from .gpu import generate_gpu
from .common import UnsupportedModelError

__all__ = ["BackendMode", "ExprEmitter", "GeneratedKernel", "KernelSpec",
           "Layout", "LayoutKind", "aos", "aosoa", "soa", "pack_state",
           "unpack_state", "generate_baseline", "generate_icc_simd",
           "generate_limpet_mlir", "generate_plugin", "Finding",
           "LegalityReport", "check_simd_legality",
           "check_population_legality", "UnsupportedModelError",
           "generate_gpu"]
