"""Shared code-generation machinery for both backends.

* :class:`KernelSpec` — everything that parameterizes a generated
  compute kernel (model, SIMD width, layout, backend mode).
* :class:`ExprEmitter` — translates EasyML expressions into IR
  operations, scalar or vector according to the spec width.  This is
  the step where ternaries become ``arith.select`` (mask-based, the
  SIMD-friendly form §5 describes) and EasyML's convenience functions
  (``square``, ``cube``, ``pow`` with small constant exponents) expand
  into multiply chains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..easyml.ast_nodes import (Binary, Call, Expr, Name, Number, Ternary,
                                Unary)
from ..easyml.errors import SemanticError
from ..frontend.model import IonicModel
from ..ir.builder import IRBuilder
from ..ir.core import Value
from ..ir.dialects import arith, math as math_dialect
from ..ir.dialects.math import EASYML_FUNCTIONS
from ..ir.types import broadcast_type, f64, i1
from .layout import Layout


class UnsupportedModelError(Exception):
    """Raised when a backend cannot compile a model's features.

    limpetMLIR supports "43 out of 47 ionic models" (§3.3.2): models
    calling foreign (external C) functions cannot be vectorized and
    stay on the baseline code generator.
    """


class BackendMode(enum.Enum):
    """Which code generator produced a kernel (§3.3, §5)."""

    BASELINE = "baseline"        # limpetC++ analog: scalar, AoS
    LIMPET_MLIR = "limpet_mlir"  # the paper's contribution
    ICC_SIMD = "icc_simd"        # icc `#pragma omp simd` comparator (§5)


@dataclass
class KernelSpec:
    """Parameters of one generated compute kernel."""

    model: IonicModel
    mode: BackendMode = BackendMode.LIMPET_MLIR
    width: int = 8                  # SIMD lanes (cells per vector)
    layout: Optional[Layout] = None  # resolved by the backend if None
    use_lut: bool = True
    #: "linear" (§3.4.2) or "spline" (the §7 future-work extension)
    lut_interpolation: str = "linear"
    function_name: str = "compute"

    @property
    def is_vectorized(self) -> bool:
        return self.mode is not BackendMode.BASELINE

    def argument_names(self) -> List[str]:
        """Kernel argument order shared by codegen and the runtime."""
        names = ["start", "end", "dt", "t", "sv"]
        names += [f"{ext}_ext" for ext in self.model.externals]
        names += [f"param_{p}" for p in self.model.promoted_params]
        if self.use_lut:
            names += [f"lut_{table.var}" for table in self.model.lut_tables]
        return names


@dataclass
class GeneratedKernel:
    """A generated IR module plus the metadata the runtime needs."""

    module: "object"               # repro.ir.Module
    spec: KernelSpec
    layout: Layout
    #: LUT tables actually emitted (empty when use_lut=False)
    lut_tables: List[object] = field(default_factory=list)


class ExprEmitter:
    """Emits IR for EasyML expressions in a given environment.

    The environment maps variable names to SSA values *already at the
    kernel's working width* (the backends broadcast shared values when
    building the environment).  Numeric results are f64-typed (scalar or
    vector); boolean subexpressions are materialized as i1 and converted
    back to 0.0/1.0 only where used as numbers, matching C semantics.
    """

    _MAX_POW_EXPAND = 8

    def __init__(self, builder: IRBuilder, env: Dict[str, Value],
                 width: int = 1, foreign=frozenset()):
        self.b = builder
        self.env = env
        self.width = width
        self.foreign = frozenset(foreign)
        self._value_type = broadcast_type(f64, width)
        self._bool_type = broadcast_type(i1, width)

    # -- public ------------------------------------------------------------------

    def emit(self, expr: Expr) -> Value:
        """Emit ``expr`` as an f64(-vector) value."""
        if self._is_boolean(expr):
            cond = self.emit_bool(expr)
            one = self._const(1.0)
            zero = self._const(0.0)
            return arith.select(self.b, cond, one, zero)
        return self._emit_numeric(expr)

    def emit_bool(self, expr: Expr) -> Value:
        """Emit ``expr`` as an i1(-vector) condition."""
        if isinstance(expr, Binary):
            if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                pred = {"<": "olt", "<=": "ole", ">": "ogt", ">=": "oge",
                        "==": "oeq", "!=": "one"}[expr.op]
                return arith.cmpf(self.b, pred, self.emit(expr.lhs),
                                  self.emit(expr.rhs))
            if expr.op == "and":
                return arith.andi(self.b, self.emit_bool(expr.lhs),
                                  self.emit_bool(expr.rhs))
            if expr.op == "or":
                return arith.ori(self.b, self.emit_bool(expr.lhs),
                                 self.emit_bool(expr.rhs))
        if isinstance(expr, Unary) and expr.op == "!":
            inner = self.emit_bool(expr.operand)
            true_const = self.b.constant(True, self._bool_type) \
                if self.width == 1 else self._bool_const(True)
            return self.b.create("arith.xori", [inner, true_const],
                                 [inner.type]).result
        # numeric used as condition: x != 0.0
        value = self._emit_numeric(expr) if not self._is_boolean(expr) \
            else self.emit(expr)
        return arith.cmpf(self.b, "one", value, self._const(0.0))

    # -- helpers ----------------------------------------------------------------

    def _const(self, value: float) -> Value:
        """A (possibly broadcast) f64 constant at the working width."""
        scalar = self.b.constant(float(value), f64)
        if self.width == 1:
            return scalar
        from ..ir.dialects import vector as vector_dialect
        return vector_dialect.broadcast(self.b, scalar, self.width)

    def _bool_const(self, value: bool) -> Value:
        scalar = self.b.constant(bool(value), i1)
        if self.width == 1:
            return scalar
        from ..ir.dialects import vector as vector_dialect
        return vector_dialect.broadcast(self.b, scalar, self.width)

    @staticmethod
    def _is_boolean(expr: Expr) -> bool:
        if isinstance(expr, Binary):
            return expr.op in ("<", "<=", ">", ">=", "==", "!=", "and", "or")
        return isinstance(expr, Unary) and expr.op == "!"

    # -- numeric ------------------------------------------------------------------

    def _emit_numeric(self, expr: Expr) -> Value:
        if isinstance(expr, Number):
            return self._const(expr.value)
        if isinstance(expr, Name):
            value = self.env.get(expr.identifier)
            if value is None:
                raise SemanticError(
                    f"codegen: no value bound for {expr.identifier!r}")
            return value
        if isinstance(expr, Unary):
            if expr.op == "-":
                return arith.negf(self.b, self.emit(expr.operand))
            # '!' handled by the boolean path in emit()
            raise SemanticError(f"codegen: unexpected unary {expr.op!r}")
        if isinstance(expr, Binary):
            return self._emit_binary(expr)
        if isinstance(expr, Ternary):
            cond = self.emit_bool(expr.cond)
            return arith.select(self.b, cond, self.emit(expr.then),
                                self.emit(expr.otherwise))
        if isinstance(expr, Call):
            return self._emit_call(expr)
        raise SemanticError(f"codegen: unsupported expression {expr!r}")

    def _emit_binary(self, expr: Binary) -> Value:
        lhs = self.emit(expr.lhs)
        rhs = self.emit(expr.rhs)
        ops = {"+": arith.addf, "-": arith.subf, "*": arith.mulf,
               "/": arith.divf, "%": arith.remf}
        fn = ops.get(expr.op)
        if fn is None:
            raise SemanticError(f"codegen: unknown operator {expr.op!r}")
        return fn(self.b, lhs, rhs)

    def _emit_call(self, expr: Call) -> Value:
        name = expr.callee
        if name in self.foreign:
            return self._emit_foreign_call(expr)
        if name == "square":
            value = self.emit(expr.args[0])
            return arith.mulf(self.b, value, value)
        if name == "cube":
            value = self.emit(expr.args[0])
            return arith.mulf(self.b, arith.mulf(self.b, value, value), value)
        if name in ("min", "max"):
            fn = arith.minimumf if name == "min" else arith.maximumf
            return fn(self.b, self.emit(expr.args[0]),
                      self.emit(expr.args[1]))
        if name == "pow":
            return self._emit_pow(expr)
        op_name = EASYML_FUNCTIONS.get(name)
        if op_name is None:
            raise SemanticError(f"codegen: unknown function {name!r}")
        args = [self.emit(a) for a in expr.args]
        return self.b.create(op_name, args, [args[0].type]).result

    @staticmethod
    def _constant_exponent(exp_expr: Expr) -> Optional[float]:
        if isinstance(exp_expr, Number):
            return exp_expr.value
        if isinstance(exp_expr, Unary) and exp_expr.op == "-" and \
                isinstance(exp_expr.operand, Number):
            return -exp_expr.operand.value
        return None

    def _emit_foreign_call(self, expr: Call) -> Value:
        """An opaque external C call: scalar passthrough only."""
        if self.width != 1:
            raise UnsupportedModelError(
                f"foreign function {expr.callee!r} cannot be vectorized; "
                f"this model is one of the 4 (of 47) outside limpetMLIR's "
                f"support (use the baseline backend)")
        from ..ir.dialects import func as func_dialect
        args = [self.emit(a) for a in expr.args]
        call = func_dialect.call(self.b, f"foreign_{expr.callee}", args,
                                 [f64])
        return call.results[0]

    def _emit_pow(self, expr: Call) -> Value:
        base_expr, exp_expr = expr.args
        exponent = self._constant_exponent(exp_expr)
        if exponent is not None:
            if exponent == int(exponent) and \
                    0 < abs(int(exponent)) <= self._MAX_POW_EXPAND:
                # pow with a small constant integer exponent expands to a
                # multiply chain — cheaper than a libm/SVML call on every
                # target ISA.
                n = int(abs(exponent))
                base = self.emit(base_expr)
                result = self._pow_chain(base, n)
                if exponent < 0:
                    result = arith.divf(self.b, self._const(1.0), result)
                return result
        base = self.emit(base_expr)
        exp_value = self.emit(exp_expr)
        return math_dialect.powf(self.b, base, exp_value)

    def _pow_chain(self, base: Value, n: int) -> Value:
        """Square-and-multiply chain for x**n, n >= 1."""
        if n == 1:
            return base
        half = self._pow_chain(base, n // 2)
        squared = arith.mulf(self.b, half, half)
        if n % 2:
            return arith.mulf(self.b, squared, base)
        return squared
