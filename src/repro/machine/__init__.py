"""The machine model: ISA specs, cost model, instrumentation, roofline."""

from .arch import AVX2, AVX512, CASCADE_LAKE, ISAS, SSE, Machine, VectorISA
from .costmodel import (CostModel, PythonRuntimeCostModel,
                        TimePoint, isa_for_width)
from .energy import EnergyModel, EnergyPoint, compare_energy
from .gpu import V100, GPUCostModel, GPUDevice, GPUTimePoint
from .instrument import KernelProfile, profile_kernel
from .roofline import (RooflineCeilings, RooflinePoint, format_roofline_table,
                       machine_ceilings, roofline_point)

__all__ = ["AVX2", "AVX512", "CASCADE_LAKE", "ISAS", "SSE", "Machine",
           "VectorISA", "CostModel", "PythonRuntimeCostModel",
           "TimePoint", "isa_for_width",
           "EnergyModel", "EnergyPoint", "compare_energy",
           "V100", "GPUCostModel", "GPUDevice", "GPUTimePoint",
           "KernelProfile", "profile_kernel", "RooflineCeilings",
           "RooflinePoint", "format_roofline_table", "machine_ceilings",
           "roofline_point"]
