"""Energy model (paper §7: "power consumption versus compute time").

The paper lists energy evaluation as future work; this module
implements it on top of the cost model: per-operation dynamic energy
(derived from published per-instruction pJ classes for server cores)
plus static/leakage power integrated over the modeled runtime.  The
interesting question the §7 sentence raises — does vectorization save
*energy* as well as time? — is answered by
:func:`compare_energy` and the ``bench_sec7_energy`` benchmark: SIMD
amortizes instruction overheads, and the shorter runtime slashes the
static-power share, so limpetMLIR wins on both axes (lower
energy-delay product everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..codegen.common import BackendMode
from .arch import CASCADE_LAKE, Machine, VectorISA
from .costmodel import CostModel
from .instrument import KernelProfile

#: dynamic energy per operation class, picojoules (server-class core,
#: 14 nm: ALU op ~20 pJ scalar; a W-lane vector op costs ~W/2 x the
#: scalar op, not W x — the amortization that makes SIMD efficient)
SCALAR_FP_PJ = 20.0
VECTOR_FP_PJ_PER_LANE = 11.0
SCALAR_MEM_PJ = 60.0            # L1-hit load/store incl. address path
VECTOR_MEM_PJ_PER_LANE = 25.0
GATHER_PJ_PER_LANE = 55.0
LIBM_CALL_PJ = 900.0            # scalar exp/log class
SVML_PJ_PER_LANE = 140.0
DRAM_PJ_PER_BYTE = 15.0
#: package static + uncore power per active core (W)
STATIC_W_PER_CORE = 2.4
PACKAGE_BASE_W = 18.0


@dataclass(frozen=True)
class EnergyPoint:
    """Modeled energy of one full bench run."""

    joules: float
    dynamic_joules: float
    static_joules: float
    seconds: float

    @property
    def average_watts(self) -> float:
        return self.joules / self.seconds if self.seconds else 0.0

    @property
    def energy_delay_product(self) -> float:
        """EDP in joule-seconds: the §7 power-vs-time trade-off metric."""
        return self.joules * self.seconds


class EnergyModel:
    """Per-run energy on the modeled testbed."""

    def __init__(self, machine: Machine = CASCADE_LAKE,
                 cost_model: Optional[CostModel] = None):
        self.machine = machine
        self.cost = cost_model or CostModel(machine)

    def dynamic_joules_per_cell(self, p: KernelProfile,
                                isa: VectorISA) -> float:
        """Dynamic (switching) energy per simulated cell per step."""
        lanes = float(p.width)
        if p.width == 1:
            fp = (p.simple_fp + p.div_fp + p.int_ops) * SCALAR_FP_PJ
            mem = (p.scalar_loads + p.scalar_stores
                   + p.lut_columns_scalar * 2.0) * SCALAR_MEM_PJ
            libm = (p.exp_class + p.pow_class) * LIBM_CALL_PJ
            per_iter = fp + mem + libm + p.other_calls * LIBM_CALL_PJ
        else:
            fp = (p.simple_fp + p.div_fp + p.int_ops) * lanes \
                * VECTOR_FP_PJ_PER_LANE
            mem = ((p.contiguous_loads + p.contiguous_stores) * lanes
                   * VECTOR_MEM_PJ_PER_LANE
                   + (p.gathers + p.scatters + p.lut_columns_vector * 2.0)
                   * lanes * GATHER_PJ_PER_LANE
                   + p.lut_columns_scalar * 2.0 * SCALAR_MEM_PJ)
            libm = (p.exp_class + p.pow_class) * lanes * SVML_PJ_PER_LANE
            libm += p.lut_calls_scalar * LIBM_CALL_PJ  # serialized (icc)
            per_iter = fp + mem + libm
        dram = self.cost.bytes_per_cell(p) * DRAM_PJ_PER_BYTE * lanes
        return (per_iter + dram) * 1e-12 / lanes

    def run_energy(self, p: KernelProfile, isa: VectorISA, threads: int,
                   n_cells: int, n_steps: int,
                   mode: BackendMode = BackendMode.LIMPET_MLIR
                   ) -> EnergyPoint:
        """Energy of a full bench run (dynamic + static over runtime)."""
        seconds = self.cost.total_time(p, isa, threads, n_cells, n_steps,
                                       mode)
        dynamic = self.dynamic_joules_per_cell(p, isa) * n_cells * n_steps
        static_power = PACKAGE_BASE_W + STATIC_W_PER_CORE * min(
            threads, self.machine.n_cores)
        static = static_power * seconds
        return EnergyPoint(joules=dynamic + static,
                           dynamic_joules=dynamic, static_joules=static,
                           seconds=seconds)


def compare_energy(profile_base: KernelProfile,
                   profile_vec: KernelProfile, isa: VectorISA,
                   threads: int, n_cells: int, n_steps: int,
                   machine: Machine = CASCADE_LAKE):
    """(baseline EnergyPoint, limpetMLIR EnergyPoint) for one config."""
    model = EnergyModel(machine)
    base = model.run_energy(profile_base, isa, threads, n_cells, n_steps,
                            BackendMode.BASELINE)
    vec = model.run_energy(profile_vec, isa, threads, n_cells, n_steps,
                           BackendMode.LIMPET_MLIR)
    return base, vec
