"""GPU cost model — pricing the SIMT kernels of the §7 extension.

A V100-class accelerator (the device contemporaneous with the paper's
Cascade Lake testbed): the model consumes the same
:class:`~repro.machine.instrument.KernelProfile` the CPU model uses,
with device-appropriate throughput classes:

* fp64 FMA throughput on all SMs;
* libdevice transcendentals (a fixed multiple of an FMA);
* HBM2 streaming bandwidth for the coalesced SoA state traffic, with a
  random-access waste factor for LUT row gathers;
* a fixed kernel-launch latency per time step — the term that makes
  *small* models GPU-unfriendly (the same role OpenMP barriers play in
  Fig. 3/4) and motivates the paper's StarPU-style heterogeneous
  scheduling remark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instrument import KernelProfile

#: instruction-throughput multiples of one fp64 op
DIV_UNITS = 12.0
EXP_UNITS = 14.0
POW_UNITS = 26.0
FOREIGN_UNITS = 60.0
LUT_COLUMN_UNITS = 6.0          # 2 dependent loads + interp math


@dataclass(frozen=True)
class GPUDevice:
    """A V100-class device description."""

    name: str = "tesla-v100"
    fp64_gflops: float = 3500.0       # sustained, not peak (7.8 peak)
    mem_bw_gbs: float = 780.0         # sustained HBM2 (900 peak)
    launch_overhead_us: float = 7.0   # per kernel launch (one per step)
    #: effective-traffic multiplier for data-dependent LUT row reads
    lut_random_access_waste: float = 4.0
    #: occupancy-limited utilization for very small grids
    min_saturating_cells: float = 40_000.0


V100 = GPUDevice()


@dataclass(frozen=True)
class GPUTimePoint:
    seconds: float
    compute_seconds: float
    memory_seconds: float
    launch_seconds: float


class GPUCostModel:
    """Evaluates SIMT kernel profiles on a GPU device description."""

    def __init__(self, device: GPUDevice = V100):
        self.device = device

    def work_units_per_cell(self, p: KernelProfile) -> float:
        """fp64-op equivalents per cell per step."""
        return (p.simple_fp
                + p.div_fp * DIV_UNITS
                + p.exp_class * EXP_UNITS
                + p.pow_class * POW_UNITS
                + p.int_ops * 0.5
                + p.lut_columns_scalar * LUT_COLUMN_UNITS
                + p.other_calls * FOREIGN_UNITS
                + 4.0)

    def bytes_per_cell(self, p: KernelProfile) -> float:
        """HBM traffic per cell per step (SoA accesses coalesce)."""
        streaming = (p.scalar_loads + p.scalar_stores) * 8.0
        lut = p.lut_columns_scalar * 2.0 * 8.0 \
            * self.device.lut_random_access_waste
        return streaming + lut

    def step_time(self, p: KernelProfile, n_cells: int) -> GPUTimePoint:
        """Modeled wall time of one compute step on the device."""
        device = self.device
        utilization = min(1.0, n_cells / device.min_saturating_cells)
        # small grids cannot fill the SMs: effective throughput scales
        # with occupancy (but never below a single-SM floor of ~2%)
        effective_gflops = device.fp64_gflops * max(utilization, 0.02)
        effective_bw = device.mem_bw_gbs * max(utilization, 0.05)
        t_compute = self.work_units_per_cell(p) * n_cells \
            / (effective_gflops * 1e9)
        t_memory = self.bytes_per_cell(p) * n_cells / (effective_bw * 1e9)
        t_launch = device.launch_overhead_us * 1e-6
        return GPUTimePoint(
            seconds=max(t_compute, t_memory) + t_launch,
            compute_seconds=t_compute, memory_seconds=t_memory,
            launch_seconds=t_launch)

    def total_time(self, p: KernelProfile, n_cells: int,
                   n_steps: int) -> float:
        return self.step_time(p, n_cells).seconds * n_steps
