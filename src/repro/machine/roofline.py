"""Roofline analysis (paper §4.5, Figure 6).

Places each ionic model on the (operational intensity, GFlops/s) plane
of the 32-core AVX-512 machine, together with the machine's ceilings:
ERT peak performance, ERT DRAM bandwidth, spec DRAM bandwidth and L1
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..codegen.common import BackendMode
from .arch import CASCADE_LAKE, AVX512, Machine, VectorISA
from .costmodel import CostModel
from .instrument import KernelProfile


@dataclass(frozen=True)
class RooflinePoint:
    """One model's placement on the roofline plane."""

    model: str
    operational_intensity: float   # Flops/Byte
    gflops: float
    memory_bound: bool
    size_class: str = ""

    def bound_kind(self, machine: Machine = CASCADE_LAKE) -> str:
        return "memory" if self.memory_bound else "compute"


@dataclass(frozen=True)
class RooflineCeilings:
    """The machine's ceilings, as plotted in Fig. 6."""

    peak_gflops: float
    dram_bw_gbs: float
    dram_bw_spec_gbs: float
    l1_bw_gbs: float

    @property
    def ridge_point(self) -> float:
        """Intensity where the DRAM roof meets peak (≈4 F/B in §4.5)."""
        return self.peak_gflops / self.dram_bw_gbs

    def attainable_gflops(self, intensity: float) -> float:
        """max performance the DRAM roofline allows at ``intensity``."""
        return min(self.peak_gflops, intensity * self.dram_bw_gbs)


def machine_ceilings(machine: Machine = CASCADE_LAKE) -> RooflineCeilings:
    return RooflineCeilings(peak_gflops=machine.peak_gflops,
                            dram_bw_gbs=machine.dram_bw_gbs,
                            dram_bw_spec_gbs=machine.dram_bw_spec_gbs,
                            l1_bw_gbs=machine.l1_bw_gbs)


def roofline_point(model_name: str, profile: KernelProfile,
                   n_cells: int = 8192, threads: int = 32,
                   isa: VectorISA = AVX512,
                   machine: Machine = CASCADE_LAKE,
                   mode: BackendMode = BackendMode.LIMPET_MLIR,
                   size_class: str = "") -> RooflinePoint:
    """Place one kernel on the roofline plane."""
    cost = CostModel(machine)
    point = cost.step_time(profile, isa, threads, n_cells, mode)
    intensity = (point.flops_per_cell / point.bytes_per_cell
                 if point.bytes_per_cell else float("inf"))
    return RooflinePoint(
        model=model_name,
        operational_intensity=intensity,
        gflops=point.flops_total / point.seconds / 1e9,
        memory_bound=point.memory_seconds > point.compute_seconds,
        size_class=size_class)


def format_roofline_table(points: List[RooflinePoint],
                          ceilings: Optional[RooflineCeilings] = None
                          ) -> str:
    """The Fig. 6 data as text: one row per model plus the ceilings."""
    ceilings = ceilings or machine_ceilings()
    lines = [f"{'model':<28} {'class':<8} {'F/B':>8} {'GFlops/s':>10} "
             f"{'bound':>8}"]
    for point in sorted(points, key=lambda p: p.operational_intensity):
        lines.append(f"{point.model:<28} {point.size_class:<8} "
                     f"{point.operational_intensity:>8.3f} "
                     f"{point.gflops:>10.1f} "
                     f"{'memory' if point.memory_bound else 'compute':>8}")
    lines.append("")
    lines.append(f"peak performance : {ceilings.peak_gflops:.0f} GFlops/s")
    lines.append(f"DRAM bandwidth   : {ceilings.dram_bw_gbs:.0f} GB/s "
                 f"(spec {ceilings.dram_bw_spec_gbs:.1f} GB/s)")
    lines.append(f"L1 bandwidth     : {ceilings.l1_bw_gbs:.0f} GB/s")
    lines.append(f"ridge point      : {ceilings.ridge_point:.2f} Flops/Byte")
    return "\n".join(lines)
