"""IR instrumentation: operation and memory-traffic counts per cell.

The paper extracts memory operation counts "by instrumenting the
generated MLIR code of the ionic models" and flop counts from
performance counters (§4.5).  This module walks a generated kernel's IR
and produces both, normalized per simulated cell per time step; the
cost model and the roofline build on these counts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from ..ir.core import Module, Operation

#: flop equivalents of the transcendental classes, as performance
#: counters would retire them (SVML polynomial evaluations)
FLOPS_EXP_CLASS = 16.0
FLOPS_POW_CLASS = 32.0

_SIMPLE_FP = {"arith.addf", "arith.subf", "arith.mulf", "arith.negf",
              "arith.maximumf", "arith.minimumf", "arith.select",
              "arith.cmpf"}
_INT_OPS = {"arith.addi", "arith.subi", "arith.muli", "arith.divsi",
            "arith.remsi", "arith.andi", "arith.ori", "arith.xori",
            "arith.index_cast", "arith.cmpi"}
_EXP_CLASS = {"math.exp", "math.expm1", "math.log", "math.log10",
              "math.log2", "math.log1p", "math.sqrt", "math.sin",
              "math.cos", "math.tanh", "math.sinh", "math.cosh",
              "math.erf", "math.absf", "math.floor", "math.ceil",
              "math.cbrt"}
_POW_CLASS = {"math.powf", "math.tan", "math.atan", "math.atan2",
              "math.asin", "math.acos"}

#: default trip count assumed for loops with non-constant bounds
_DEFAULT_TRIP = 4.0


@dataclass
class KernelProfile:
    """Per-cell-iteration operation counts of one compute kernel.

    Counts are per *loop iteration* of the cell loop; one iteration
    covers ``width`` cells.  ``per_cell(attr)`` normalizes.
    """

    width: int = 1
    layout: str = "aos"
    parallel: bool = False
    simt: bool = False
    function: str = ""
    # instruction counts (per cell-loop iteration)
    simple_fp: float = 0.0
    div_fp: float = 0.0
    exp_class: float = 0.0
    pow_class: float = 0.0
    int_ops: float = 0.0
    selects: float = 0.0
    contiguous_loads: float = 0.0
    contiguous_stores: float = 0.0
    scalar_loads: float = 0.0
    scalar_stores: float = 0.0
    gathers: float = 0.0
    scatters: float = 0.0
    broadcasts: float = 0.0
    inserts_extracts: float = 0.0
    lut_calls_scalar: float = 0.0
    lut_calls_vector: float = 0.0
    #: columns summed over scalar calls (one call covers ONE lane)
    lut_columns_scalar: float = 0.0
    #: columns summed over vector calls (one call covers ALL lanes)
    lut_columns_vector: float = 0.0
    other_calls: float = 0.0
    # pre-loop setup ops (hoisted; charged once per kernel invocation)
    setup_ops: float = 0.0

    # -- derived -------------------------------------------------------------------

    def per_cell(self, value: float) -> float:
        return value / self.width

    @property
    def flops_per_cell(self) -> float:
        """FP operations per cell per step (roofline x-axis numerator)."""
        lanes = float(self.width)
        lut_column_elements = (self.lut_columns_vector * lanes
                               + self.lut_columns_scalar)
        lut_index_elements = (self.lut_calls_vector * lanes
                              + self.lut_calls_scalar)
        per_iter = (self.simple_fp * lanes
                    + self.div_fp * lanes
                    + self.exp_class * lanes * FLOPS_EXP_CLASS
                    + self.pow_class * lanes * FLOPS_POW_CLASS
                    + lut_column_elements * 4.0        # interp mul/add
                    + lut_index_elements * 4.0)        # index computation
        return per_iter / lanes

    @property
    def bytes_per_cell(self) -> float:
        """Nominal DRAM/cache traffic per cell per step (8B doubles)."""
        lanes = float(self.width)
        lut_column_elements = (self.lut_columns_vector * lanes
                               + self.lut_columns_scalar)
        element_moves = ((self.contiguous_loads + self.contiguous_stores
                          + self.gathers + self.scatters) * lanes
                         + self.scalar_loads + self.scalar_stores
                         + lut_column_elements * 2.0)
        return element_moves * 8.0 / lanes

    @property
    def operational_intensity(self) -> float:
        bytes_ = self.bytes_per_cell
        return self.flops_per_cell / bytes_ if bytes_ else float("inf")

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)
                if isinstance(getattr(self, f.name), (int, float))}


def profile_kernel(module: Module, function_name: str) -> KernelProfile:
    """Instrument one kernel function; see :class:`KernelProfile`."""
    func_op = module.lookup_func(function_name)
    if func_op is None:
        raise ValueError(f"no function @{function_name}")
    profile = KernelProfile(function=function_name)
    _walk_function(func_op, profile)
    return profile


def _walk_function(func_op: Operation, profile: KernelProfile) -> None:
    entry = func_op.regions[0].entry
    _count_block(entry, profile, multiplier=0.0, in_cell_loop=False)


def _count_block(block, profile: KernelProfile, multiplier: float,
                 in_cell_loop: bool) -> None:
    for op in block.ops:
        if op.name == "omp.parallel":
            profile.parallel = True
            _count_block(op.regions[0].entry, profile, multiplier,
                         in_cell_loop)
            continue
        if op.name == "gpu.launch":
            profile.simt = True
            profile.parallel = True
            _count_block(op.regions[0].entry, profile, multiplier,
                         in_cell_loop)
            continue
        if op.name == "scf.for":
            if op.attributes.get("cell_loop"):
                profile.simt = profile.simt or \
                    bool(op.attributes.get("simt"))
                profile.width = int(op.attributes.get("vector_width", 1))
                profile.layout = str(op.attributes.get("layout", "aos"))
                profile.parallel = profile.parallel or \
                    bool(op.attributes.get("parallel"))
                _count_block(op.regions[0].entry, profile, 1.0, True)
            else:
                trip = _trip_count(op)
                _count_block(op.regions[0].entry, profile,
                             multiplier * trip if in_cell_loop else 0.0,
                             in_cell_loop)
            continue
        if op.name == "scf.if":
            # both branches execute under if-conversion / vector masks
            for region in op.regions:
                _count_block(region.entry, profile, multiplier,
                             in_cell_loop)
            continue
        if not in_cell_loop:
            profile.setup_ops += 1
            continue
        _count_op(op, profile, multiplier)


def _trip_count(op: Operation) -> float:
    bounds = []
    for operand in op.operands[:3]:
        owner = operand.owner
        if isinstance(owner, Operation) and owner.name == "arith.constant":
            bounds.append(owner.attributes["value"])
        else:
            return _DEFAULT_TRIP
    lb, ub, step = bounds
    if step <= 0:
        return _DEFAULT_TRIP
    return max(0.0, float(-(-(ub - lb) // step)))


def _count_op(op: Operation, profile: KernelProfile, m: float) -> None:
    name = op.name
    if name in ("scf.yield", "omp.terminator", "func.return",
                "arith.constant"):
        return
    if name == "arith.divf" or name == "arith.remf":
        profile.div_fp += m
    elif name in _SIMPLE_FP:
        profile.simple_fp += m
        if name == "arith.select":
            profile.selects += m
    elif name in _EXP_CLASS:
        profile.exp_class += m
    elif name in _POW_CLASS:
        profile.pow_class += m
    elif name in _INT_OPS or name in ("arith.sitofp", "arith.fptosi"):
        profile.int_ops += m
    elif name == "memref.load":
        profile.scalar_loads += m
    elif name == "memref.store":
        profile.scalar_stores += m
    elif name == "vector.load":
        profile.contiguous_loads += m
    elif name == "vector.store":
        profile.contiguous_stores += m
    elif name == "vector.gather":
        profile.gathers += m
    elif name == "vector.scatter":
        profile.scatters += m
    elif name == "vector.broadcast":
        profile.broadcasts += m
    elif name in ("vector.extract", "vector.insert", "vector.step"):
        profile.inserts_extracts += m
    elif name == "func.call":
        callee = op.attributes.get("callee", "")
        if callee.startswith("LUT_interpRowSpline_n_elements_vec"):
            # cubic interpolation: 4 row gathers + a polynomial per
            # column, charged as twice the linear column work
            profile.lut_calls_vector += m
            profile.lut_columns_vector += 2.0 * m * len(op.results)
        elif callee.startswith("LUT_interpRowSpline"):
            profile.lut_calls_scalar += m
            profile.lut_columns_scalar += 2.0 * m * len(op.results)
        elif callee.startswith("LUT_interpRow_n_elements_vec"):
            profile.lut_calls_vector += m
            profile.lut_columns_vector += m * len(op.results)
        elif callee.startswith("LUT_interpRow"):
            profile.lut_calls_scalar += m
            profile.lut_columns_scalar += m * len(op.results)
        else:
            profile.other_calls += m
    elif name in ("memref.cast", "memref.view", "memref.dim",
                  "gpu.global_id", "gpu.grid_dim"):
        profile.int_ops += m
