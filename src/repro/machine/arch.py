"""Architecture descriptions for the analytical machine model.

The paper's testbed is a 2x 18-core Cascade Lake Xeon Gold 6240
@2.6 GHz (Turbo/HT off), 192 GB RAM, evaluated with SSE (2 doubles),
AVX2 (4) and AVX-512 (8) and 1-32 threads.  Empirical Roofline Tool
measurements reported in §4.5: peak 760 GFlops/s on 32 cores, DRAM
bandwidth 199 GB/s, L1 bandwidth 1052 GB/s (spec DRAM: 140.8 GB/s).

We reproduce that machine as a calibrated cost model (see DESIGN.md §2
for the substitution rationale).  All constants below are in cycles,
bytes or GB/s; per-op costs are derived from published instruction
tables (Agner Fog / uops.info class numbers) and the SVML throughput
class, rounded to the granularity an analytical model supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class VectorISA:
    """One SIMD instruction-set tier."""

    name: str
    width: int                    # doubles per vector register
    #: throughput cost (cycles per instruction) of a simple FP vector op
    fp_cycles: float
    #: cycles per vectorized transcendental (SVML class: exp/log)
    svml_exp_cycles: float
    #: cycles per vectorized division/sqrt
    fp_div_cycles: float
    #: cycles to gather one full vector (scales with lanes)
    gather_cycles: float
    #: cycles to scatter one full vector
    scatter_cycles: float
    #: cycles for a contiguous vector load/store (L1 hit)
    load_cycles: float

    def __str__(self) -> str:
        return self.name


SSE = VectorISA(name="sse", width=2, fp_cycles=1.0,
                svml_exp_cycles=18.0, fp_div_cycles=8.0,
                gather_cycles=5.0, scatter_cycles=6.0, load_cycles=1.0)

AVX2 = VectorISA(name="avx2", width=4, fp_cycles=1.0,
                 svml_exp_cycles=22.0, fp_div_cycles=10.0,
                 gather_cycles=8.0, scatter_cycles=9.0, load_cycles=1.0)

AVX512 = VectorISA(name="avx512", width=8, fp_cycles=1.0,
                   svml_exp_cycles=30.0, fp_div_cycles=16.0,
                   gather_cycles=12.0, scatter_cycles=14.0, load_cycles=1.0)

ISAS: Dict[str, VectorISA] = {isa.name: isa for isa in (SSE, AVX2, AVX512)}


@dataclass(frozen=True)
class ScalarCosts:
    """Per-operation scalar costs (the baseline's world).

    Scalar libm calls are genuinely more expensive per element than
    SVML's per-lane cost — that is part of why Fig. 2 speedups exceed
    the lane count on math-heavy models (e.g. ISAC_Hu, §4.1).
    """

    fp_cycles: float = 1.0
    libm_exp_cycles: float = 48.0     # glibc exp/log class
    libm_pow_cycles: float = 160.0    # pow/atan class (call + argument
                                      # reduction dominate per element)
    fp_div_cycles: float = 7.0        # divsd throughput, not latency
    load_cycles: float = 1.0
    #: per-iteration loop/bookkeeping overhead of the scalar cell loop
    #: (address arithmetic, struct pointer chasing, spills)
    loop_overhead_cycles: float = 12.0


@dataclass(frozen=True)
class Machine:
    """The full platform: cores, frequency, memory system, OMP costs."""

    name: str = "cascadelake-2x6240"
    n_cores: int = 32
    frequency_hz: float = 2.6e9
    #: ERT-measured peak and bandwidths (§4.5)
    peak_gflops: float = 760.0
    dram_bw_gbs: float = 199.0
    dram_bw_spec_gbs: float = 140.8
    l1_bw_gbs: float = 1052.0
    #: last-level cache per socket (Cascade Lake 6240: 24.75 MB x2)
    llc_bytes: float = 2 * 24.75e6
    #: single-core sustainable DRAM bandwidth
    core_bw_gbs: float = 13.0
    #: aggregate cache-hierarchy bandwidth for LLC-resident working sets
    llc_bw_gbs: float = 400.0
    #: per-core cache-bandwidth advantage over DRAM streaming
    cache_bw_factor: float = 2.7
    #: OpenMP static-for fork/join + barrier cost per parallel region,
    #: as base + per-doubling growth (microseconds)
    omp_base_us: float = 1.6
    omp_log_us: float = 1.1
    scalar: ScalarCosts = field(default_factory=ScalarCosts)

    def omp_overhead_seconds(self, threads: int) -> float:
        """Synchronization cost of one parallel compute step."""
        if threads <= 1:
            return 0.0
        import math
        return (self.omp_base_us
                + self.omp_log_us * math.log2(threads)) * 1e-6

    def memory_bandwidth_gbs(self, threads: int,
                             working_set_bytes: float) -> float:
        """Aggregate bandwidth available to ``threads`` cores.

        Bandwidth scales with cores until the DRAM limit; a working set
        that fits in LLC sees cache bandwidth instead (how OHara and
        Courtemanche exceed the DRAM roof in Fig. 6).
        """
        dram = min(threads * self.core_bw_gbs, self.dram_bw_gbs)
        if working_set_bytes <= self.llc_bytes:
            cached = min(threads * self.core_bw_gbs * self.cache_bw_factor,
                         self.llc_bw_gbs)
            return max(dram, cached)
        return dram

    def core_peak_gflops(self, isa: VectorISA) -> float:
        """Single-core peak for one ISA tier (2 FMA ports, FMA=2 flops)."""
        return self.frequency_hz * isa.width * 4.0 / 1e9


CASCADE_LAKE = Machine()
