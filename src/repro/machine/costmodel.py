"""The analytical cost model: IR counts -> execution time.

Turns a :class:`~repro.machine.instrument.KernelProfile` into seconds
for a given (ISA, thread count, cell count, step count) point on the
paper's testbed (see :mod:`repro.machine.arch`).  The model is a
max(compute, memory) roofline with explicit OpenMP synchronization
costs:

  t_step = max(t_compute(T), t_memory(T)) + t_omp(T) + t_mode(T)
  t_total = steps * t_step

It consumes the *actual generated IR* of each backend, so baseline vs
limpetMLIR differences (scalar libm vs SVML, gathers vs contiguous
loads, serialized vs vectorized LUT calls, AoS vs AoSoA cache
behaviour) come out of the code generators, not out of this file.
Constants are calibrated once against the paper's headline numbers and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..codegen.common import BackendMode
from .arch import CASCADE_LAKE, ISAS, Machine, VectorISA
from .instrument import KernelProfile

#: cycles of fixed cost per scalar LUT_interpRow call (call + clamping)
SCALAR_LUT_CALL_CYCLES = 26.0
#: additional cycles per column in the scalar interp loop
SCALAR_LUT_COLUMN_CYCLES = 6.0
#: fixed cycles per vectorized interp call (index/clamp vector math)
VECTOR_LUT_CALL_CYCLES = 18.0
#: extra per-step overhead of the vectorized runtime, per thread
#: (thread-pool wake + vector epilogue/alignment handling); this is the
#: calibrated constant that reproduces the small-model slowdown of
#: Fig. 3 / Fig. 4.
VECTOR_STEP_OVERHEAD_US_PER_THREAD = 0.35
VECTOR_STEP_OVERHEAD_BASE_US = 0.3
#: cache-line size in doubles, for gather waste accounting
LINE_DOUBLES = 8
#: per-cell bench glue outside the vectorizable kernel body (external
#: variable plumbing, stimulus/solver coupling, per-cell bookkeeping) —
#: paid equally by both versions; this is the Amdahl fraction that
#: keeps small-model speedups "low and irregular" (§4.1)
GLUE_CYCLES_PER_CELL = 19.0


@dataclass(frozen=True)
class TimePoint:
    """Modeled execution of one configuration."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    cycles_per_cell: float
    bytes_per_cell: float
    flops_per_cell: float

    @property
    def gflops(self) -> float:
        return 0.0 if self.seconds == 0 else \
            self.flops_total / self.seconds / 1e9

    flops_total: float = 0.0


class CostModel:
    """Evaluates kernel profiles on a machine description."""

    def __init__(self, machine: Machine = CASCADE_LAKE):
        self.machine = machine

    # -- per-iteration cycle cost ----------------------------------------------------

    def cycles_per_iteration(self, profile: KernelProfile,
                             isa: VectorISA) -> float:
        """Cycles for one cell-loop iteration (= ``profile.width`` cells)."""
        if profile.width == 1:
            return self._scalar_cycles(profile)
        return self._vector_cycles(profile, isa)

    def _scalar_cycles(self, p: KernelProfile) -> float:
        sc = self.machine.scalar
        cycles = (p.simple_fp * sc.fp_cycles
                  + p.div_fp * sc.fp_div_cycles
                  + p.exp_class * sc.libm_exp_cycles
                  + p.pow_class * sc.libm_pow_cycles
                  + p.int_ops * 0.5
                  + (p.scalar_loads + p.scalar_stores) * sc.load_cycles
                  + p.lut_calls_scalar * SCALAR_LUT_CALL_CYCLES
                  + p.lut_columns_scalar * SCALAR_LUT_COLUMN_CYCLES
                  + p.other_calls * 45.0      # foreign C calls
                  + sc.loop_overhead_cycles)
        return cycles

    def _vector_cycles(self, p: KernelProfile, isa: VectorISA) -> float:
        scale = p.width / isa.width   # iterations emitted at width W run
        # on an ISA of the same width in the sweep; scale guards misuse
        cycles = (p.simple_fp * isa.fp_cycles
                  + p.div_fp * isa.fp_div_cycles
                  + p.exp_class * isa.svml_exp_cycles
                  + p.pow_class * isa.svml_exp_cycles * 1.4
                  + p.int_ops * 0.5
                  + (p.contiguous_loads + p.contiguous_stores)
                  * isa.load_cycles
                  + p.gathers * isa.gather_cycles
                  + p.scatters * isa.scatter_cycles
                  + p.broadcasts * 1.0
                  + p.inserts_extracts * 2.0
                  + p.lut_calls_vector * VECTOR_LUT_CALL_CYCLES
                  # two gathers per column of the interpolation rows
                  + p.lut_columns_vector * 2.0 * isa.gather_cycles
                  # serialized scalar LUT calls inside a simd loop (icc):
                  # every lane pays the full scalar call cost (§5)
                  + p.lut_calls_scalar * SCALAR_LUT_CALL_CYCLES
                  + p.lut_columns_scalar * SCALAR_LUT_COLUMN_CYCLES
                  + 4.0)              # vector loop bookkeeping
        return cycles * scale

    # -- memory traffic ---------------------------------------------------------------

    def bytes_per_cell(self, p: KernelProfile) -> float:
        """Effective traffic per cell, including gather line waste.

        A gather with stride >= a cache line touches one line per lane;
        the AoS vector path therefore moves up to ``LINE_DOUBLES`` more
        data than it uses — the §3.4.1 effect the AoSoA layout removes.
        """
        lanes = float(p.width)
        lut_column_elements = (p.lut_columns_vector * lanes
                               + p.lut_columns_scalar)
        # LUT rows are accessed at data-dependent indices: each 16B pair
        # of interpolation operands drags in a cache line the next cell
        # may not reuse (~3x effective traffic).  This is what makes the
        # LUT-heavy medium models "by nature memory-bound" at high
        # thread counts (§4.2).
        nominal = ((p.contiguous_loads + p.contiguous_stores) * lanes
                   + p.scalar_loads + p.scalar_stores
                   + lut_column_elements * 2.0 * 3.0)
        gather_lanes = (p.gathers + p.scatters) * lanes
        waste = self._gather_waste(p)
        return (nominal + gather_lanes * waste) * 8.0 / lanes

    def _gather_waste(self, p: KernelProfile) -> float:
        if p.layout.startswith("aos") and not p.layout.startswith("aosoa"):
            # stride = n_states doubles: each lane's element sits on its
            # own cache line, but successive slots of the same cell reuse
            # it, so the effective waste is ~2x rather than a full line
            return 2.0
        return 1.0

    # -- end-to-end time -----------------------------------------------------------------

    def step_time(self, profile: KernelProfile, isa: VectorISA,
                  threads: int, n_cells: int,
                  mode: BackendMode = BackendMode.LIMPET_MLIR,
                  state_bytes_per_cell: Optional[float] = None) -> TimePoint:
        """Modeled wall time of one compute step."""
        m = self.machine
        threads = min(threads, m.n_cores)
        iters = n_cells / profile.width
        cycles_iter = self.cycles_per_iteration(profile, isa)
        cycles_total = cycles_iter * iters + GLUE_CYCLES_PER_CELL * n_cells
        t_compute = cycles_total / threads / m.frequency_hz

        bytes_cell = self.bytes_per_cell(profile)
        working_set = (state_bytes_per_cell or bytes_cell) * n_cells
        bw = m.memory_bandwidth_gbs(threads, working_set) * 1e9
        t_memory = bytes_cell * n_cells / bw

        t_overhead = m.omp_overhead_seconds(threads) if profile.parallel \
            else 0.0
        if mode is not BackendMode.BASELINE:
            t_overhead += (VECTOR_STEP_OVERHEAD_BASE_US
                           + VECTOR_STEP_OVERHEAD_US_PER_THREAD
                           * threads) * 1e-6
        seconds = max(t_compute, t_memory) + t_overhead
        flops_cell = profile.flops_per_cell
        return TimePoint(seconds=seconds, compute_seconds=t_compute,
                         memory_seconds=t_memory,
                         overhead_seconds=t_overhead,
                         cycles_per_cell=cycles_iter / profile.width,
                         bytes_per_cell=bytes_cell,
                         flops_per_cell=flops_cell,
                         flops_total=flops_cell * n_cells)

    def total_time(self, profile: KernelProfile, isa: VectorISA,
                   threads: int, n_cells: int, n_steps: int,
                   mode: BackendMode = BackendMode.LIMPET_MLIR) -> float:
        """Modeled seconds for a full bench run."""
        return self.step_time(profile, isa, threads, n_cells,
                              mode).seconds * n_steps

    def gflops(self, profile: KernelProfile, isa: VectorISA, threads: int,
               n_cells: int,
               mode: BackendMode = BackendMode.LIMPET_MLIR) -> float:
        """Achieved GFlops/s of the compute stage (Fig. 6 y-axis)."""
        point = self.step_time(profile, isa, threads, n_cells, mode)
        return point.flops_total / point.seconds / 1e9


def isa_for_width(width: int) -> VectorISA:
    """The ISA tier whose vector width matches a kernel width."""
    for isa in ISAS.values():
        if isa.width == width:
            return isa
    raise ValueError(f"no ISA with width {width} (choose 2, 4 or 8)")


class PythonRuntimeCostModel(CostModel):
    """Cost model of the *executing* NumPy runtime, for the autotuner.

    The base :class:`CostModel` models the paper's Cascade Lake — real
    SIMD units, caches, SVML.  But this repository's kernels execute as
    flattened NumPy statements (``repro.runtime.lowering``): every IR
    op in the cell loop runs **once per step over all cells**, so the
    real costs are (a) per-statement interpreter/ufunc dispatch and
    (b) per-element ufunc work — a completely different balance (LUT
    gathers lose to recomputed ``exp``; fusion saves dispatch, not
    flops).  This subclass keeps the :meth:`step_time` contract but
    prices that runtime, so the tuner's predicted ranking matches what
    measurement will see.

    Two keyword-only extensions price lowering flags that do not change
    the IR: ``fuse`` (fewer statements after expression fusion) and
    ``arena`` (a measured *penalty* — ``out=`` reuse into long-lived
    buffers defeats NumPy's temp-buffer cache here).  ``threads``
    models :class:`~repro.runtime.sharded.ShardedRunner` shards: element
    work parallelizes (ufuncs release the GIL), dispatch does not, and
    each step pays a pool-submission cost per shard.

    Constants were calibrated against measured ``steady_state`` runs of
    representative models on CPython 3.11 + NumPy (see EXPERIMENTS.md,
    tuner ablation); they need to *rank* configurations, not predict
    absolute seconds.
    """

    #: per-statement cost of one lowered NumPy statement (ufunc dispatch,
    #: temporary allocation, name binding)
    DISPATCH_US = 0.6
    #: extra dispatch for transcendental statements (libm setup)
    DISPATCH_EXP_US = 1.9
    #: statement-count ratio after fused expression lowering
    FUSED_STATEMENT_RATIO = 0.55
    #: buffer-arena penalties — measured: ``out=`` reuse into long-lived
    #: arena buffers defeats NumPy's temporary-buffer reuse and costs
    #: more than the allocations it saves on this runtime
    ARENA_DISPATCH_RATIO = 1.35
    ARENA_ELEMENT_RATIO = 1.1
    #: per-element costs (nanoseconds) by operation class, calibrated in
    #: the throughput regime (arrays of thousands of cells)
    EL_SIMPLE_NS = 0.5
    EL_DIV_NS = 2.0
    EL_EXP_NS = 3.5
    EL_POW_NS = 6.0
    EL_MOVE_NS = 1.0          # vector load/store (fancy-index block move)
    EL_GATHER_NS = 4.0        # vector gather/scatter (strided fancy index)
    EL_LUT_COLUMN_NS = 13.0   # 2 row gathers + interpolation arithmetic
    #: per-block index construction for vector accessors — the runtime
    #: builds one fancy index per cell *block*, so wider kernels build
    #: fewer (this is what separates width 8 from width 4 at runtime)
    EL_INDEX_NS = 1.0
    #: statements per interpolated LUT column (gathers + mul/add chain)
    LUT_COLUMN_STATEMENTS = 3.0
    #: per-op per-cell cost of the scalar baseline's Python loop
    PY_SCALAR_OP_NS = 60.0
    #: per-shard pool submission cost per step, and thread efficiency
    POOL_SUBMIT_US = 60.0
    THREAD_EFFICIENCY = 0.85

    def __init__(self, machine: Machine = CASCADE_LAKE,
                 host_cpus: Optional[int] = None):
        super().__init__(machine)
        import os
        self.host_cpus = host_cpus or (os.cpu_count() or 1)

    def step_time(self, profile: KernelProfile, isa: VectorISA,
                  threads: int, n_cells: int,
                  mode: BackendMode = BackendMode.LIMPET_MLIR,
                  state_bytes_per_cell: Optional[float] = None, *,
                  fuse: bool = True, arena: bool = False) -> TimePoint:
        """Modeled wall time of one compute step on the NumPy runtime."""
        p = profile
        if p.width == 1:
            return self._scalar_step(p, n_cells)
        # statements executed per step (flattened: one per IR op)
        statements = (p.simple_fp + p.div_fp + p.exp_class + p.pow_class
                      + p.int_ops * 0.3
                      + p.contiguous_loads + p.contiguous_stores
                      + p.gathers + p.scatters
                      + p.broadcasts * 0.2 + p.inserts_extracts
                      + p.lut_columns_vector * self.LUT_COLUMN_STATEMENTS
                      + p.lut_columns_scalar * self.LUT_COLUMN_STATEMENTS)
        if fuse:
            statements *= self.FUSED_STATEMENT_RATIO
        dispatch_us = self.DISPATCH_US
        if arena:
            dispatch_us *= self.ARENA_DISPATCH_RATIO
        # transcendental statements survive fusion (each exp/pow is one
        # libm-backed ufunc call regardless) and pay extra setup
        t_dispatch = (statements * dispatch_us
                      + (p.exp_class + p.pow_class)
                      * self.DISPATCH_EXP_US) * 1e-6

        per_el_ns = (p.simple_fp * self.EL_SIMPLE_NS
                     + p.div_fp * self.EL_DIV_NS
                     + p.exp_class * self.EL_EXP_NS
                     + p.pow_class * self.EL_POW_NS
                     + (p.contiguous_loads + p.contiguous_stores)
                     * self.EL_MOVE_NS
                     + (p.gathers + p.scatters) * self.EL_GATHER_NS
                     + (p.lut_columns_vector + p.lut_columns_scalar)
                     * self.EL_LUT_COLUMN_NS
                     + p.int_ops * 0.3)
        accessors = (p.contiguous_loads + p.contiguous_stores
                     + p.gathers + p.scatters)
        n_blocks = n_cells / max(p.width, 1)
        t_element = (n_cells * per_el_ns
                     + accessors * n_blocks * self.EL_INDEX_NS) * 1e-9
        if arena:
            t_element *= self.ARENA_ELEMENT_RATIO

        t_pool = 0.0
        eff_threads = max(1, min(threads, self.host_cpus))
        if threads > 1:
            t_pool = threads * self.POOL_SUBMIT_US * 1e-6
            t_element /= 1.0 + (eff_threads - 1) * self.THREAD_EFFICIENCY
        seconds = t_dispatch + t_element + t_pool
        flops_cell = p.flops_per_cell
        return TimePoint(seconds=seconds, compute_seconds=t_element,
                         memory_seconds=0.0,
                         overhead_seconds=t_dispatch + t_pool,
                         cycles_per_cell=0.0,
                         bytes_per_cell=p.bytes_per_cell,
                         flops_per_cell=flops_cell,
                         flops_total=flops_cell * n_cells)

    def _scalar_step(self, p: KernelProfile, n_cells: int) -> TimePoint:
        """The baseline per-cell Python interpreter loop."""
        ops = (p.simple_fp + p.div_fp + p.exp_class + p.pow_class
               + p.int_ops
               + p.scalar_loads + p.scalar_stores
               + p.lut_calls_scalar * 4.0
               + p.lut_columns_scalar * 2.0
               + p.other_calls * 2.0)
        t_compute = ops * n_cells * self.PY_SCALAR_OP_NS * 1e-9
        seconds = t_compute + 2e-6          # loop setup
        flops_cell = p.flops_per_cell
        return TimePoint(seconds=seconds, compute_seconds=t_compute,
                         memory_seconds=0.0, overhead_seconds=2e-6,
                         cycles_per_cell=0.0,
                         bytes_per_cell=p.bytes_per_cell,
                         flops_per_cell=flops_cell,
                         flops_total=flops_cell * n_cells)
