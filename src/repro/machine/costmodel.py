"""The analytical cost model: IR counts -> execution time.

Turns a :class:`~repro.machine.instrument.KernelProfile` into seconds
for a given (ISA, thread count, cell count, step count) point on the
paper's testbed (see :mod:`repro.machine.arch`).  The model is a
max(compute, memory) roofline with explicit OpenMP synchronization
costs:

  t_step = max(t_compute(T), t_memory(T)) + t_omp(T) + t_mode(T)
  t_total = steps * t_step

It consumes the *actual generated IR* of each backend, so baseline vs
limpetMLIR differences (scalar libm vs SVML, gathers vs contiguous
loads, serialized vs vectorized LUT calls, AoS vs AoSoA cache
behaviour) come out of the code generators, not out of this file.
Constants are calibrated once against the paper's headline numbers and
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..codegen.common import BackendMode
from .arch import CASCADE_LAKE, ISAS, Machine, VectorISA
from .instrument import KernelProfile

#: cycles of fixed cost per scalar LUT_interpRow call (call + clamping)
SCALAR_LUT_CALL_CYCLES = 26.0
#: additional cycles per column in the scalar interp loop
SCALAR_LUT_COLUMN_CYCLES = 6.0
#: fixed cycles per vectorized interp call (index/clamp vector math)
VECTOR_LUT_CALL_CYCLES = 18.0
#: extra per-step overhead of the vectorized runtime, per thread
#: (thread-pool wake + vector epilogue/alignment handling); this is the
#: calibrated constant that reproduces the small-model slowdown of
#: Fig. 3 / Fig. 4.
VECTOR_STEP_OVERHEAD_US_PER_THREAD = 0.35
VECTOR_STEP_OVERHEAD_BASE_US = 0.3
#: cache-line size in doubles, for gather waste accounting
LINE_DOUBLES = 8
#: per-cell bench glue outside the vectorizable kernel body (external
#: variable plumbing, stimulus/solver coupling, per-cell bookkeeping) —
#: paid equally by both versions; this is the Amdahl fraction that
#: keeps small-model speedups "low and irregular" (§4.1)
GLUE_CYCLES_PER_CELL = 19.0


@dataclass(frozen=True)
class TimePoint:
    """Modeled execution of one configuration."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    cycles_per_cell: float
    bytes_per_cell: float
    flops_per_cell: float

    @property
    def gflops(self) -> float:
        return 0.0 if self.seconds == 0 else \
            self.flops_total / self.seconds / 1e9

    flops_total: float = 0.0


class CostModel:
    """Evaluates kernel profiles on a machine description."""

    def __init__(self, machine: Machine = CASCADE_LAKE):
        self.machine = machine

    # -- per-iteration cycle cost ----------------------------------------------------

    def cycles_per_iteration(self, profile: KernelProfile,
                             isa: VectorISA) -> float:
        """Cycles for one cell-loop iteration (= ``profile.width`` cells)."""
        if profile.width == 1:
            return self._scalar_cycles(profile)
        return self._vector_cycles(profile, isa)

    def _scalar_cycles(self, p: KernelProfile) -> float:
        sc = self.machine.scalar
        cycles = (p.simple_fp * sc.fp_cycles
                  + p.div_fp * sc.fp_div_cycles
                  + p.exp_class * sc.libm_exp_cycles
                  + p.pow_class * sc.libm_pow_cycles
                  + p.int_ops * 0.5
                  + (p.scalar_loads + p.scalar_stores) * sc.load_cycles
                  + p.lut_calls_scalar * SCALAR_LUT_CALL_CYCLES
                  + p.lut_columns_scalar * SCALAR_LUT_COLUMN_CYCLES
                  + p.other_calls * 45.0      # foreign C calls
                  + sc.loop_overhead_cycles)
        return cycles

    def _vector_cycles(self, p: KernelProfile, isa: VectorISA) -> float:
        scale = p.width / isa.width   # iterations emitted at width W run
        # on an ISA of the same width in the sweep; scale guards misuse
        cycles = (p.simple_fp * isa.fp_cycles
                  + p.div_fp * isa.fp_div_cycles
                  + p.exp_class * isa.svml_exp_cycles
                  + p.pow_class * isa.svml_exp_cycles * 1.4
                  + p.int_ops * 0.5
                  + (p.contiguous_loads + p.contiguous_stores)
                  * isa.load_cycles
                  + p.gathers * isa.gather_cycles
                  + p.scatters * isa.scatter_cycles
                  + p.broadcasts * 1.0
                  + p.inserts_extracts * 2.0
                  + p.lut_calls_vector * VECTOR_LUT_CALL_CYCLES
                  # two gathers per column of the interpolation rows
                  + p.lut_columns_vector * 2.0 * isa.gather_cycles
                  # serialized scalar LUT calls inside a simd loop (icc):
                  # every lane pays the full scalar call cost (§5)
                  + p.lut_calls_scalar * SCALAR_LUT_CALL_CYCLES
                  + p.lut_columns_scalar * SCALAR_LUT_COLUMN_CYCLES
                  + 4.0)              # vector loop bookkeeping
        return cycles * scale

    # -- memory traffic ---------------------------------------------------------------

    def bytes_per_cell(self, p: KernelProfile) -> float:
        """Effective traffic per cell, including gather line waste.

        A gather with stride >= a cache line touches one line per lane;
        the AoS vector path therefore moves up to ``LINE_DOUBLES`` more
        data than it uses — the §3.4.1 effect the AoSoA layout removes.
        """
        lanes = float(p.width)
        lut_column_elements = (p.lut_columns_vector * lanes
                               + p.lut_columns_scalar)
        # LUT rows are accessed at data-dependent indices: each 16B pair
        # of interpolation operands drags in a cache line the next cell
        # may not reuse (~3x effective traffic).  This is what makes the
        # LUT-heavy medium models "by nature memory-bound" at high
        # thread counts (§4.2).
        nominal = ((p.contiguous_loads + p.contiguous_stores) * lanes
                   + p.scalar_loads + p.scalar_stores
                   + lut_column_elements * 2.0 * 3.0)
        gather_lanes = (p.gathers + p.scatters) * lanes
        waste = self._gather_waste(p)
        return (nominal + gather_lanes * waste) * 8.0 / lanes

    def _gather_waste(self, p: KernelProfile) -> float:
        if p.layout.startswith("aos") and not p.layout.startswith("aosoa"):
            # stride = n_states doubles: each lane's element sits on its
            # own cache line, but successive slots of the same cell reuse
            # it, so the effective waste is ~2x rather than a full line
            return 2.0
        return 1.0

    # -- end-to-end time -----------------------------------------------------------------

    def step_time(self, profile: KernelProfile, isa: VectorISA,
                  threads: int, n_cells: int,
                  mode: BackendMode = BackendMode.LIMPET_MLIR,
                  state_bytes_per_cell: Optional[float] = None) -> TimePoint:
        """Modeled wall time of one compute step."""
        m = self.machine
        threads = min(threads, m.n_cores)
        iters = n_cells / profile.width
        cycles_iter = self.cycles_per_iteration(profile, isa)
        cycles_total = cycles_iter * iters + GLUE_CYCLES_PER_CELL * n_cells
        t_compute = cycles_total / threads / m.frequency_hz

        bytes_cell = self.bytes_per_cell(profile)
        working_set = (state_bytes_per_cell or bytes_cell) * n_cells
        bw = m.memory_bandwidth_gbs(threads, working_set) * 1e9
        t_memory = bytes_cell * n_cells / bw

        t_overhead = m.omp_overhead_seconds(threads) if profile.parallel \
            else 0.0
        if mode is not BackendMode.BASELINE:
            t_overhead += (VECTOR_STEP_OVERHEAD_BASE_US
                           + VECTOR_STEP_OVERHEAD_US_PER_THREAD
                           * threads) * 1e-6
        seconds = max(t_compute, t_memory) + t_overhead
        flops_cell = profile.flops_per_cell
        return TimePoint(seconds=seconds, compute_seconds=t_compute,
                         memory_seconds=t_memory,
                         overhead_seconds=t_overhead,
                         cycles_per_cell=cycles_iter / profile.width,
                         bytes_per_cell=bytes_cell,
                         flops_per_cell=flops_cell,
                         flops_total=flops_cell * n_cells)

    def total_time(self, profile: KernelProfile, isa: VectorISA,
                   threads: int, n_cells: int, n_steps: int,
                   mode: BackendMode = BackendMode.LIMPET_MLIR) -> float:
        """Modeled seconds for a full bench run."""
        return self.step_time(profile, isa, threads, n_cells,
                              mode).seconds * n_steps

    def gflops(self, profile: KernelProfile, isa: VectorISA, threads: int,
               n_cells: int,
               mode: BackendMode = BackendMode.LIMPET_MLIR) -> float:
        """Achieved GFlops/s of the compute stage (Fig. 6 y-axis)."""
        point = self.step_time(profile, isa, threads, n_cells, mode)
        return point.flops_total / point.seconds / 1e9


def isa_for_width(width: int) -> VectorISA:
    """The ISA tier whose vector width matches a kernel width."""
    for isa in ISAS.values():
        if isa.width == width:
            return isa
    raise ValueError(f"no ISA with width {width} (choose 2, 4 or 8)")
