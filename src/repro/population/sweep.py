"""The one-call parameter-sweep API: ``repro.population.sweep()``.

A sweep is a population run built from ``"lo:hi:N"`` range strings —
the drug-block idiom (``GKr="0.1:1.0:16"`` scales IKr conductance from
90% block to none).  The compiled kernel is keyed by the population
*shape* (parameter names + N), so every sweep of the same shape after
the first is a compile-cache hit, counted in
``sweep_compile_reuse_total``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .runner import PopulationRunner, PopulationRunResult, \
    load_promoted_model
from .spec import PopulationSpec


def sweep(model: str, params: Mapping[str, str],
          cells_per_instance: int = 256, n_steps: int = 100,
          dt: float = 0.01, absolute: bool = False,
          n_threads: int = 1, n_workers: int = 0,
          shard_axis: str = "cells", width: int = 8,
          layout: Optional[str] = None, cache=None,
          record_vm: bool = False, perturbation: float = 0.0,
          stimulus=None, **runner_kwargs) -> PopulationRunResult:
    """Run one batched parameter sweep of a registry model.

    ``params`` maps parameter names to ``"lo:hi:N"`` ranges — scale
    factors of the declared value by default, raw values with
    ``absolute=True``.  Returns a
    :class:`~repro.population.PopulationRunResult` whose
    ``compile_reused`` flag says whether the kernel came from the
    persistent cache (one compile serves every sweep of this shape).
    """
    promoted = load_promoted_model(
        model, tuple(dict.fromkeys(params)))
    spec = PopulationSpec.from_ranges(promoted, params, absolute=absolute)
    with _trace.span("sweep", model=model,
                     instances=spec.n_instances,
                     params=",".join(spec.param_names)):
        pop = PopulationRunner(promoted, spec, width=width, layout=layout,
                               n_threads=n_threads, n_workers=n_workers,
                               shard_axis=shard_axis, cache=cache,
                               **runner_kwargs)
        try:
            state = pop.make_state(cells_per_instance,
                                   perturbation=perturbation)
            if pop.cache_hit:
                _metrics.counter(
                    "sweep_compile_reuse_total",
                    "sweeps served by an already-compiled population "
                    "kernel").inc()
            result = pop.run(state, n_steps, dt, stimulus=stimulus,
                             record_vm=record_vm)
        finally:
            pop.close()
    return result
