"""Population execution: one kernel advancing N parameter-perturbed
model instances.

Instead of N sequential :class:`~repro.runtime.KernelRunner` runs, the
population layer compiles the model once with the swept parameters
*promoted* from baked-in constants to per-cell arrays, flattens the
(instance × cell) axes into one instance-major cell range, and
advances all ``N × cells_per_instance`` cells per kernel call.  The
per-instance parameter value is broadcast over the instance's cells,
so the kernel body is the ordinary vectorized cell loop — the batch
axis is just more cells (the NMODL move applied to limpet kernels).

Bitwise guarantee: the batched run and a loop of N single-instance
runs use the *same* promoted kernel, whose lane semantics are
elementwise — trajectories are bitwise identical, which
``tests/test_population.py`` enforces across layouts × widths ×
ragged cell counts × execution tiers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codegen import (check_population_legality, generate_baseline,
                       generate_limpet_mlir)
from ..frontend.model import IonicModel
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..runtime.executor import KernelRunner, RunResult, Stimulus
from ..runtime.sharded import ShardedRunner
from ..runtime.state import SimulationState
from .spec import PopulationSpec


@lru_cache(maxsize=64)
def load_promoted_model(name: str,
                        promote_params: Tuple[str, ...]) -> IonicModel:
    """A registry model re-analyzed with ``promote_params`` runtime-bound.

    Cached: every sweep of the same (model, params) shape shares one
    analysis, exactly as it shares one compiled kernel.
    """
    from ..frontend import load_model_file
    from ..models.registry import model_entry
    return load_model_file(model_entry(name).path,
                           promote_params=promote_params)


def instance_shard_plan(n_instances: int, cells_per_instance: int,
                        n_shards: int, width: int
                        ) -> Optional[List[Tuple[int, int]]]:
    """Instance-aligned shard bounds over the flattened cell axis.

    Returns ``None`` when instance boundaries don't land on vector
    blocks (``cells_per_instance % width != 0``) — the caller falls
    back to plain cell sharding, which is always legal.
    """
    if cells_per_instance % max(width, 1):
        return None
    n_shards = max(1, min(n_shards, n_instances))
    base, extra = divmod(n_instances, n_shards)
    plan: List[Tuple[int, int]] = []
    inst = 0
    for i in range(n_shards):
        take = base + (1 if i < extra else 0)
        if not take:
            continue
        plan.append((inst * cells_per_instance,
                     (inst + take) * cells_per_instance))
        inst += take
    return plan


class PopulationRunResult:
    """Per-instance view over one batched population run."""

    def __init__(self, flat: RunResult, spec: PopulationSpec,
                 cells_per_instance: int,
                 vm_traces: Optional[np.ndarray] = None,
                 compile_reused: bool = False):
        #: the underlying flat run over all N × cells_per_instance cells
        self.flat = flat
        self.spec = spec
        self.cells_per_instance = cells_per_instance
        #: (n_steps, n_instances) Vm of each instance's first cell, or
        #: ``None`` when the run did not record traces
        self.vm_traces = vm_traces
        #: True when the compiled kernel came from the persistent cache
        self.compile_reused = compile_reused

    @property
    def n_instances(self) -> int:
        return self.spec.n_instances

    @property
    def n_steps(self) -> int:
        return self.flat.n_steps

    @property
    def elapsed_seconds(self) -> float:
        return self.flat.elapsed_seconds

    @property
    def steps_per_second(self) -> float:
        return self.flat.steps_per_second

    @property
    def cell_steps_per_second(self) -> float:
        """Aggregate cell·steps/s — the flat run already spans all
        instances' cells, so no extra multiplier is needed here."""
        return self.flat.cell_steps_per_second

    def instance_state_matrix(self, i: int) -> np.ndarray:
        """(cells_per_instance, n_states) final state of instance ``i``."""
        self._check_index(i)
        c = self.cells_per_instance
        return self.flat.state.state_matrix()[i * c:(i + 1) * c]

    def instance_param(self, name: str, i: int) -> float:
        self._check_index(i)
        return float(self.spec.values[name][i])

    def vm_trace_of(self, i: int) -> Optional[np.ndarray]:
        if self.vm_traces is None:
            return None
        self._check_index(i)
        return self.vm_traces[:, i]

    def instance_results(self) -> List[RunResult]:
        """Carve one :class:`RunResult` per instance.

        Each carries ``instances=n_instances`` so its
        ``cell_steps_per_second`` reports the true kernel throughput
        (the kernel advanced every instance's cells each step, not just
        this one's).
        """
        return [self.instance_result(i) for i in range(self.n_instances)]

    def instance_result(self, i: int) -> RunResult:
        self._check_index(i)
        c = self.cells_per_instance
        flat_state = self.flat.state
        from ..runtime.state import allocate_state
        values = {name: float(self.spec.values[name][i])
                  for name in self.spec.values}
        state = allocate_state(flat_state.model, flat_state.layout, c,
                               param_values=values)
        state.set_state(self.instance_state_matrix(i))
        for name, array in flat_state.externals.items():
            state.externals[name][:c] = array[i * c:(i + 1) * c]
            state.externals[name][c:] = array[i * c + c - 1] if c else 0.0
        state.time = flat_state.time
        state.steps_done = flat_state.steps_done
        return RunResult(state=state, n_steps=self.flat.n_steps,
                         dt=self.flat.dt,
                         elapsed_seconds=self.flat.elapsed_seconds,
                         vm_trace=self.vm_trace_of(i),
                         instances=self.n_instances)

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.n_instances:
            raise IndexError(f"instance {i} out of range "
                             f"[0, {self.n_instances})")


class PopulationRunner:
    """Compile once, advance N parameter-perturbed instances per step.

    ``model`` is a registry model name (promoted analysis is cached) or
    an already-promoted :class:`IonicModel` whose ``promoted_params``
    cover the spec.  Foreign models are never an error: they batch
    through the scalar baseline kernel instead of the vectorized one.

    ``n_threads`` > 1 shards the flattened (instance × cell) axis on a
    thread pool; ``shard_axis="instances"`` aligns shard bounds to
    instance boundaries when the geometry allows (falling back to cell
    sharding otherwise).  ``n_workers`` > 0 runs shards in supervised
    worker processes (crash isolation, PR 6).
    """

    def __init__(self, model, spec: PopulationSpec,
                 width: int = 8, layout: Optional[str] = None,
                 use_lut: bool = True, n_threads: int = 1,
                 n_workers: int = 0, shard_axis: str = "cells",
                 cache=None, **runner_kwargs):
        if shard_axis not in ("cells", "instances"):
            raise ValueError(f"shard_axis must be 'cells' or "
                             f"'instances', got {shard_axis!r}")
        self.spec = spec
        self.model = self._promoted_model(model, spec)
        report = check_population_legality(self.model, spec.param_names)
        if not report.vectorizable:
            raise ValueError(report.describe())
        self.legality = report
        self.n_threads = n_threads
        self.n_workers = n_workers
        self.shard_axis = shard_axis
        self._runner_kwargs = dict(runner_kwargs)
        self._runner_kwargs["cache"] = cache
        self.foreign = bool(self.model.foreign_functions)
        if self.foreign:
            self.generated = generate_baseline(self.model, use_lut=use_lut)
        else:
            self.generated = generate_limpet_mlir(
                self.model, width=width, layout=layout, use_lut=use_lut)
        self.width = self.generated.spec.width
        self._runner: Optional[KernelRunner] = None
        self._runner_cells: Optional[int] = None

    @staticmethod
    def _promoted_model(model, spec: PopulationSpec) -> IonicModel:
        if isinstance(model, IonicModel):
            missing = [p for p in spec.param_names
                       if p not in model.promoted_params]
            if not missing:
                return model
            from ..models.registry import model_entry
            try:
                model_entry(model.name)
            except Exception:
                raise ValueError(
                    f"model {model.name} does not promote "
                    f"{missing} and is not in the registry; analyze it "
                    f"with promote_params={list(spec.param_names)}")
            model = model.name
        promote = tuple(spec.param_names)
        return load_promoted_model(str(model), promote)

    # -- tier construction ---------------------------------------------------------

    def runner_for(self, cells_per_instance: int) -> KernelRunner:
        """The execution-tier runner for this population geometry."""
        if self._runner is not None and \
                self._runner_cells == cells_per_instance:
            return self._runner
        self.close()
        kwargs = dict(self._runner_kwargs)
        kwargs["population"] = self.spec.fingerprint()
        if self.n_workers > 0:
            from ..runtime.supervised import SupervisedRunner
            runner: KernelRunner = SupervisedRunner(
                self.generated, n_workers=self.n_workers,
                shard_plan=self._shard_plan(cells_per_instance,
                                            self.n_workers),
                **kwargs)
        elif self.n_threads > 1:
            runner = ShardedRunner(
                self.generated, n_threads=self.n_threads,
                shard_plan=self._shard_plan(cells_per_instance,
                                            self.n_threads),
                **kwargs)
        else:
            runner = KernelRunner(self.generated, **kwargs)
        self._runner = runner
        self._runner_cells = cells_per_instance
        return runner

    def _shard_plan(self, cells_per_instance: int, n_shards: int):
        if self.shard_axis != "instances":
            return None
        plan = instance_shard_plan(self.spec.n_instances,
                                   cells_per_instance, n_shards,
                                   self.width)
        return plan

    @property
    def cache_hit(self) -> bool:
        return self._runner is not None and self._runner.cache_hit

    @property
    def cache_key(self) -> Optional[str]:
        return self._runner.cache_key if self._runner is not None else None

    def close(self) -> None:
        if self._runner is not None and hasattr(self._runner, "close"):
            self._runner.close()
        self._runner = None
        self._runner_cells = None

    def __enter__(self) -> "PopulationRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- state ---------------------------------------------------------------------

    def make_state(self, cells_per_instance: int,
                   vm_init: Optional[float] = None,
                   perturbation: float = 0.0,
                   rng=None) -> SimulationState:
        """Instance-major flat state: cell ``i*c + j`` is instance i's
        cell j.  Parameter arrays broadcast each instance's value over
        its cells (padding replicates the last instance's value)."""
        if cells_per_instance < 1:
            raise ValueError("cells_per_instance must be >= 1")
        runner = self.runner_for(cells_per_instance)
        n = self.spec.n_instances
        flat_cells = n * cells_per_instance
        param_values = {
            name: np.repeat(vals, cells_per_instance)
            for name, vals in self.spec.values.items()}
        return runner.make_state(flat_cells, vm_init=vm_init,
                                 perturbation=perturbation, rng=rng,
                                 param_values=param_values)

    # -- running -------------------------------------------------------------------

    def run(self, state: SimulationState, n_steps: int, dt: float = 0.01,
            stimulus: Optional[Stimulus] = None,
            record_vm: bool = False, watchdog=None,
            time_breakdown: bool = False) -> PopulationRunResult:
        """Advance the whole population ``n_steps`` in one batched run."""
        c = state.n_cells // self.spec.n_instances
        if c * self.spec.n_instances != state.n_cells:
            raise ValueError(
                f"state has {state.n_cells} cells, not a multiple of "
                f"{self.spec.n_instances} instances")
        runner = self.runner_for(c)
        _metrics.gauge(
            "population_instances",
            "instances advanced per kernel call by the latest "
            "population run").set(self.spec.n_instances)
        traces: Optional[np.ndarray] = None
        hook = None
        if record_vm and "Vm" in state.externals:
            vm = state.externals["Vm"]
            first_cells = np.arange(self.spec.n_instances) * c
            traces = np.empty((n_steps, self.spec.n_instances))
            counter = [0]

            def hook(st, _traces=traces, _vm=vm, _idx=first_cells,
                     _ctr=counter):
                if _ctr[0] < n_steps:
                    _traces[_ctr[0]] = _vm[_idx]
                _ctr[0] += 1
        with _trace.span("population_run", model=self.model.name,
                         instances=self.spec.n_instances,
                         cells_per_instance=c, n_steps=n_steps):
            flat = runner.run(state, n_steps, dt, stimulus=stimulus,
                              record_vm=False, watchdog=watchdog,
                              step_hook=hook,
                              time_breakdown=time_breakdown)
        from ..obs import ledger as _ledger
        _ledger.record_event(
            "population_run", model=self.model.name,
            population=self.spec.fingerprint(),
            instances=self.spec.n_instances, cells_per_instance=c,
            tier=getattr(runner, "execution_tier", "single"),
            n_steps=n_steps, dt=dt,
            steps_per_second=flat.steps_per_second,
            disposition="ok")
        return PopulationRunResult(flat, self.spec, c, vm_traces=traces,
                                   compile_reused=runner.cache_hit)

    def simulate(self, cells_per_instance: int, n_steps: int,
                 dt: float = 0.01, stimulus: Optional[Stimulus] = None,
                 perturbation: float = 0.0,
                 record_vm: bool = False) -> PopulationRunResult:
        """Allocate, run, return — the one-call population entry point."""
        state = self.make_state(cells_per_instance,
                                perturbation=perturbation)
        return self.run(state, n_steps, dt, stimulus=stimulus,
                        record_vm=record_vm)
