"""Population-batched execution: one kernel, N parameter-perturbed
instances (ROADMAP item 3(b) — the batch-axis throughput lever).

* :class:`PopulationSpec` — which params vary, per-instance values;
* :class:`PopulationRunner` — compile once (params promoted to
  per-instance arrays), advance all instances per kernel call;
* :func:`sweep` — the drug-block one-liner over ``"lo:hi:N"`` ranges.
"""

from .runner import (PopulationRunner, PopulationRunResult,
                     instance_shard_plan, load_promoted_model)
from .spec import PopulationSpec, parse_range
from .sweep import sweep

__all__ = ["PopulationSpec", "PopulationRunner", "PopulationRunResult",
           "instance_shard_plan", "load_promoted_model", "parse_range",
           "sweep"]
