"""Population specification: which params vary, and how, per instance.

A :class:`PopulationSpec` maps promoted parameter names to length-N
value arrays — instance ``i`` of the population runs with
``values[name][i]`` in place of the model's declared constant.  The
*shape* of a population (parameter names + N, never the values) is
what keys compilation and tuning: every sweep of the same shape reuses
one compiled kernel and one tuning record.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..frontend.model import IonicModel


class PopulationSpec:
    """Per-instance values for one or more promoted parameters.

    ``values`` maps parameter name -> array-like of length N (equal
    for every parameter).  Order is preserved: it defines the kernel's
    ``param_*`` argument order via the promoted model.
    """

    def __init__(self, values: Mapping[str, Iterable[float]]):
        if not values:
            raise ValueError("PopulationSpec needs at least one parameter")
        self.values: Dict[str, np.ndarray] = {}
        n: Optional[int] = None
        for name, vals in values.items():
            array = np.atleast_1d(np.asarray(vals, dtype=np.float64))
            if array.ndim != 1 or array.size == 0:
                raise ValueError(
                    f"param {name!r}: values must be a non-empty 1-D "
                    f"sequence, got shape {array.shape}")
            if not np.isfinite(array).all():
                raise ValueError(f"param {name!r}: non-finite value in "
                                 f"the population")
            if n is None:
                n = array.size
            elif array.size != n:
                raise ValueError(
                    f"param {name!r} has {array.size} values but the "
                    f"population has {n} instances")
            self.values[name] = array
        self.n_instances: int = int(n or 0)

    # -- identity ----------------------------------------------------------------

    @property
    def param_names(self):
        """Promoted parameter names, in declaration order."""
        return tuple(self.values)

    def fingerprint(self) -> str:
        """The population *shape*: sorted names + N, never the values.

        Two sweeps with the same fingerprint share one compiled kernel
        and one tuning record — that is the whole point of promoting
        the parameters instead of baking them in.
        """
        return f"params={','.join(sorted(self.values))};" \
               f"n={self.n_instances}"

    def __repr__(self) -> str:
        return (f"PopulationSpec({self.n_instances} instances, "
                f"params={list(self.values)})")

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def from_ranges(cls, model: IonicModel, ranges: Mapping[str, str],
                    absolute: bool = False) -> "PopulationSpec":
        """Build a spec from ``"lo:hi:N"`` range strings.

        By default the endpoints are *scale factors* of the model's
        declared value (``GKr=0.1:1.0:16`` sweeps a 90%→0% IKr block);
        with ``absolute=True`` they are raw parameter values.
        """
        values: Dict[str, np.ndarray] = {}
        n: Optional[int] = None
        for name, text in ranges.items():
            if name not in model.params:
                raise ValueError(
                    f"{name!r} is not a declared .param() of "
                    f"{model.name} (params: "
                    f"{', '.join(sorted(model.params)) or '(none)'})")
            lo, hi, count = parse_range(text)
            if n is None:
                n = count
            elif count != n:
                raise ValueError(
                    f"param {name!r} asks for {count} instances but the "
                    f"population has {n}")
            grid = np.linspace(lo, hi, count)
            values[name] = grid if absolute else grid * model.params[name]
        return cls(values)


def parse_range(text: str):
    """Parse ``"lo:hi:N"`` -> (lo, hi, N).  ``"lo:hi"`` defaults N=16."""
    parts = str(text).split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"range {text!r}: expected lo:hi:N (e.g. 0.1:1.0:16)")
    try:
        lo, hi = float(parts[0]), float(parts[1])
        count = int(parts[2]) if len(parts) == 3 else 16
    except ValueError:
        raise ValueError(f"range {text!r}: expected numbers in lo:hi:N")
    if count < 1:
        raise ValueError(f"range {text!r}: N must be >= 1")
    return lo, hi, count
