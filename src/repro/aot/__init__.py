"""AOT kernel artifact bundles: build once, cold-start everywhere.

``limpet-bench build-all`` (:func:`~repro.aot.build.build_bundle`)
compiles the model zoo into a versioned bundle directory; any process
pointed at it via ``$LIMPET_ARTIFACT_DIR`` gets zero-compile cold
start through the read-only :class:`~repro.aot.bundle.ArtifactStore`
tier (checked after the in-memory and per-user kernel caches) or the
even cheaper :func:`~repro.aot.bundle.runner_from_store` spec path.
``limpet-bench artifacts audit``
(:func:`~repro.aot.audit.audit_bundle`) reports entries whose inputs
drifted.  See DESIGN.md §12.
"""

from .bundle import (BUNDLE_FORMAT_VERSION, MANIFEST_NAME,
                     ArtifactKernel, ArtifactStore,
                     default_artifact_dir, default_store,
                     kernel_from_entry, resolve_store,
                     runner_from_store, spec_fingerprint,
                     tuned_variant_name)
from .build import BuildReport, BuiltEntry, build_bundle
from .audit import AuditFinding, AuditReport, audit_bundle

__all__ = ["BUNDLE_FORMAT_VERSION", "MANIFEST_NAME", "ArtifactKernel",
           "ArtifactStore", "default_artifact_dir", "default_store",
           "kernel_from_entry", "resolve_store", "runner_from_store",
           "spec_fingerprint", "tuned_variant_name",
           "BuildReport", "BuiltEntry", "build_bundle",
           "AuditFinding", "AuditReport", "audit_bundle"]
