"""``limpet-bench artifacts audit``: staleness + integrity for bundles.

A bundle is immutable at runtime, but the *inputs* it was derived from
keep moving: pass pipelines grow, ``LOWERING_VERSION`` bumps, models
get edited, the tuning DB learns new winners.  The audit walks every
manifest entry and reports exactly which dimension drifted:

* ``missing``        — the manifest names an entry file that is gone;
* ``corrupt``        — the entry fails its sha256 checksum; the file is
  **quarantined** (moved to ``<root>/quarantine/``, same machinery as
  the kernel cache's corrupt-entry handling) so it can never be served;
* ``pipeline_drift`` — recorded pass-pipeline fingerprint differs from
  the current default pipeline's;
* ``lowering_drift`` — recorded ``LOWERING_VERSION`` differs;
* ``source_drift``   — recorded model source hash differs from the
  registry file's current bytes;
* ``tuning_drift``   — a tuned entry whose recorded winner is no
  longer the tuning DB's winner for its workload (or the record is
  gone);
* ``key_mismatch``   — deep re-derivation: regenerating the kernel IR
  and recomputing the kernel-cache key no longer reproduces the
  entry's key (catches code-generator changes the fast checks cannot).

Every stale finding increments ``artifact_stale_total``; corrupt ones
increment ``artifact_corrupt_total``.  The CLI exits non-zero when any
finding survives, naming the drifted entries.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..ir.passes import default_pipeline
from ..obs import metrics as _metrics
from ..runtime.kernel_cache import payload_checksum
from .bundle import (BUNDLE_FORMAT_VERSION, QUARANTINE_DIR,
                     ArtifactStore)


@dataclass
class AuditFinding:
    """One problem with one bundle entry."""

    key: str
    model: str
    variant: str
    kind: str          # missing|corrupt|pipeline_drift|lowering_drift|
    #                  # source_drift|tuning_drift|key_mismatch
    detail: str = ""

    def describe(self) -> str:
        return (f"{self.kind}: {self.model} [{self.variant}] "
                f"{self.key[:12]}… {self.detail}".rstrip())


@dataclass
class AuditReport:
    """Outcome of one :func:`audit_bundle` call."""

    root: str
    checked: int = 0
    findings: List[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def stale_keys(self) -> List[str]:
        return sorted({f.key for f in self.findings})

    def describe(self) -> str:
        if self.ok:
            return (f"bundle {self.root}: {self.checked} entries "
                    f"audited, all current")
        lines = [f"bundle {self.root}: {self.checked} entries audited, "
                 f"{len(self.findings)} finding(s):"]
        lines += [f"  {f.describe()}" for f in self.findings]
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        return {"root": self.root, "checked": self.checked,
                "ok": self.ok,
                "findings": [{"key": f.key, "model": f.model,
                              "variant": f.variant, "kind": f.kind,
                              "detail": f.detail}
                             for f in self.findings]}


def _count_stale() -> None:
    _metrics.counter(
        "artifact_stale_total",
        "AOT artifact entries found stale (drifted inputs)").inc()


def _quarantine_entry(root: pathlib.Path, path: pathlib.Path,
                      reason: str) -> Optional[pathlib.Path]:
    """Move a corrupt entry aside (the kernel cache's machinery)."""
    target = None
    try:
        qdir = root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        os.replace(path, target)
    except OSError:
        target = None
    from ..resilience.diagnostics import (Diagnostic, Severity,
                                          log_diagnostic)
    log_diagnostic(Diagnostic(
        stage="cache", component="artifacts",
        message=f"quarantined corrupt artifact {path.name}: {reason}",
        severity=Severity.WARNING,
        data={"entry": path.name,
              "quarantined_to": str(target) if target else None}))
    _metrics.counter(
        "artifact_corrupt_total",
        "corrupt AOT artifact entries/manifests detected").inc()
    return target


def _rederive_key(entry: Dict, fingerprint: str) -> Optional[str]:
    """Regenerate the entry's kernel IR and recompute its cache key."""
    from ..codegen import generate_baseline, generate_limpet_mlir
    from ..models import load_model
    from ..runtime.kernel_cache import kernel_cache_key
    spec = entry["spec"]
    model = load_model(spec["model"])
    tuning = entry.get("tuning")
    if tuning is not None:
        from ..tuning import generate_for
        from ..tuning.space import TuningConfig
        config = TuningConfig.from_dict(tuning)
        generated = generate_for(model, config)
        fuse, arena = config.fuse, config.arena
    else:
        fuse, arena = True, False
        if spec["backend"] == "baseline":
            generated = generate_baseline(
                model, use_lut=spec["use_lut"],
                lut_interpolation=spec["lut_interpolation"])
        else:
            generated = generate_limpet_mlir(
                model, spec["width"], use_lut=spec["use_lut"],
                lut_interpolation=spec["lut_interpolation"])
    return kernel_cache_key(generated, fingerprint, fuse, arena, True)


def audit_bundle(root: Union[str, pathlib.Path], db=None,
                 deep: bool = True) -> AuditReport:
    """Audit every manifest entry of the bundle at ``root``.

    ``db`` is the tuning database to check tuned entries against
    (default: the process tuning DB).  ``deep=True`` additionally
    re-derives every clean entry's kernel-cache key from freshly
    generated IR — the authoritative check, at the cost of one codegen
    per entry; ``deep=False`` keeps only the recorded-provenance
    comparisons (still sufficient for pipeline/lowering/source/tuning
    drift).
    """
    from ..runtime.lowering import LOWERING_VERSION
    from ..tuning.database import model_source_hash, tuning_db_key
    from ..tuning.space import Workload

    root = pathlib.Path(root)
    store = ArtifactStore(root)
    report = AuditReport(root=str(root))
    manifest = store.manifest()
    if manifest is None:
        report.findings.append(AuditFinding(
            key="", model="", variant="",
            kind="missing", detail=f"no readable manifest in {root}"))
        return report
    current_fp = default_pipeline(verify_each=False).fingerprint()
    if db is None:
        from ..tuning.database import TuningDB
        db = TuningDB()

    for key, ment in sorted(manifest.get("entries", {}).items()):
        report.checked += 1
        model = ment.get("model", "?")
        variant = ment.get("variant", "default")
        path = store.entry_path(key)
        if not path.exists():
            report.findings.append(AuditFinding(
                key=key, model=model, variant=variant, kind="missing",
                detail=f"entry file {path.name} does not exist"))
            _count_stale()
            continue
        try:
            import json
            entry = json.loads(path.read_text())
            valid = isinstance(entry, dict) \
                and entry.get("format") == BUNDLE_FORMAT_VERSION \
                and entry.get("checksum") == payload_checksum(entry)
        except (OSError, ValueError):
            entry, valid = None, False
        if not valid:
            target = _quarantine_entry(root, path, "checksum mismatch")
            report.findings.append(AuditFinding(
                key=key, model=model, variant=variant, kind="corrupt",
                detail=("quarantined to "
                        f"{target}" if target else "quarantine failed")))
            continue

        flagged = False
        prov = entry.get("provenance", {})
        if prov.get("pipeline_fingerprint") != current_fp:
            report.findings.append(AuditFinding(
                key=key, model=model, variant=variant,
                kind="pipeline_drift",
                detail=(f"built with {prov.get('pipeline_fingerprint')!r},"
                        f" current {current_fp!r}")))
            _count_stale()
            flagged = True
        if prov.get("lowering_version") != LOWERING_VERSION:
            report.findings.append(AuditFinding(
                key=key, model=model, variant=variant,
                kind="lowering_drift",
                detail=(f"built at v{prov.get('lowering_version')}, "
                        f"current v{LOWERING_VERSION}")))
            _count_stale()
            flagged = True
        try:
            current_hash = model_source_hash(model)
        except Exception:
            current_hash = None
        if prov.get("model_source_hash") != current_hash:
            report.findings.append(AuditFinding(
                key=key, model=model, variant=variant,
                kind="source_drift",
                detail="model source bytes changed since build"))
            _count_stale()
            flagged = True
        if entry.get("tuning") is not None:
            drift = _tuning_drift(entry, db, tuning_db_key, Workload)
            if drift:
                report.findings.append(AuditFinding(
                    key=key, model=model, variant=variant,
                    kind="tuning_drift", detail=drift))
                _count_stale()
                flagged = True
        if deep and not flagged:
            try:
                rederived = _rederive_key(entry, current_fp)
            except Exception as err:  # noqa: BLE001 - audit boundary
                rederived = None
                detail = f"re-derivation failed: {type(err).__name__}"
            else:
                detail = (f"recorded {key[:12]}…, re-derived "
                          f"{(rederived or '?')[:12]}…")
            if rederived != key:
                report.findings.append(AuditFinding(
                    key=key, model=model, variant=variant,
                    kind="key_mismatch", detail=detail))
                _count_stale()
    return report


def _tuning_drift(entry: Dict, db, tuning_db_key, workload_cls
                  ) -> Optional[str]:
    """Why this tuned entry no longer matches the DB, or None."""
    workload_d = entry.get("tuning_workload")
    if not isinstance(workload_d, dict):
        return "no recorded workload to re-check against"
    try:
        workload = workload_cls(
            model=workload_d["model"],
            n_cells=int(workload_d["n_cells"]),
            dt=float(workload_d["dt"]),
            integrator=workload_d.get("integrator", ""),
            machine=workload_d.get("machine", "python-numpy"),
            population=workload_d.get("population", ""))
        current = db.get_config(tuning_db_key(workload))
    except Exception as err:  # noqa: BLE001 - audit boundary
        return f"workload re-check failed: {type(err).__name__}"
    if current is None:
        return "tuning DB no longer records a winner for this workload"
    if current.as_dict() != entry["tuning"]:
        return (f"DB winner is now {current.describe()}, entry was "
                f"built for a different config")
    return None
