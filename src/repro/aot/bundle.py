"""Versioned AOT kernel artifact bundles: formats, store, fast path.

The paper's openCARP workflow ahead-of-time compiles every ionic model
once and ships the binaries into the tissue simulator; this package
reproduces that fleet shape.  ``limpet-bench build-all``
(:mod:`repro.aot.build`) compiles the whole model zoo into a **bundle
directory**: one JSON entry per kernel (lowered source + spec + tuning
decision + provenance + sha256 checksum) plus a bundle-level
``manifest.json``.  A bundle is immutable at runtime — processes mount
it read-only via ``$LIMPET_ARTIFACT_DIR`` and the
:class:`ArtifactStore` tier serves entries with **zero compile work**:
no passes, no verification, no lowering, bitwise-identical to the JIT
result (the entry *is* the JIT result, stored).

Two lookup paths exist, layered under the per-user kernel cache:

* **key lookup** — :class:`~repro.runtime.executor.KernelRunner`
  computes its content-addressed kernel-cache key as usual and, on an
  in-memory + per-user-cache miss, asks the store for that exact key.
  Covers every runner (sharded, supervised, population) but still pays
  IR generation to compute the key.
* **spec lookup** (:func:`runner_from_store`) — resolves a kernel by
  its *logical coordinates* (model, backend, width, LUT/fuse/arena
  flags, tuned variant) through the manifest's ``spec_index``, checking
  the model source hash, pipeline fingerprint and lowering version
  instead of re-deriving the key.  Skips IR generation entirely, and
  even the model *parse*: the bundle ships each parsed
  :class:`~repro.frontend.model.IonicModel` as a checksum-verified
  pickle blob (``models/<name>.pkl``), trusted exactly as far as the
  bundled kernel source we already ``exec`` — this is the zero-compile
  cold-start path (read + exec).

Staleness is structural: the spec fingerprint embeds the pipeline
fingerprint and ``LOWERING_VERSION``, and the manifest records each
entry's model source hash, so a drifted toolchain or edited model
misses cleanly and falls back to JIT (``limpet-bench artifacts audit``
reports exactly which entries drifted; see :mod:`repro.aot.audit`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..codegen.common import BackendMode, GeneratedKernel, KernelSpec
from ..codegen.layout import Layout, LayoutKind
from ..obs import metrics as _metrics

#: bump to invalidate every existing bundle at once
BUNDLE_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: subdirectory the audit moves corrupt entries into
QUARANTINE_DIR = "quarantine"

#: subdirectory holding pickled pre-parsed models (one per model)
MODELS_DIR = "models"

_ENV_DIR = "LIMPET_ARTIFACT_DIR"
_ENV_DISABLE = "LIMPET_ARTIFACTS"


def tuned_variant_name(config) -> str:
    """The stable variant label of one tuned configuration."""
    return "tuned:" + json.dumps(config.as_dict(), sort_keys=True)


def spec_fingerprint(model: str, backend: str, width: int,
                     use_lut: bool = True,
                     lut_interpolation: str = "linear",
                     fuse: bool = True, arena: bool = False,
                     verify: bool = True, population: str = "",
                     variant: str = "default",
                     pipeline_fingerprint: Optional[str] = None) -> str:
    """Content address of a kernel's *logical coordinates*.

    Unlike :func:`~repro.runtime.kernel_cache.kernel_cache_key` this
    never looks at generated IR, so the runtime can compute it without
    running code generation — the whole point of the cold-start fast
    path.  It embeds the pipeline fingerprint and lowering version, so
    a drifted toolchain misses structurally; the model *source* drift
    is checked separately against the manifest's recorded hash (the
    source is an input we can hash cheaply, not a derived coordinate).

    The layout is deliberately absent: it is derived by the backend
    from (mode, width) and reconstructed from the entry payload.
    """
    from ..ir.passes import default_pipeline
    from ..runtime.kernel_cache import CACHE_FORMAT_VERSION
    from ..runtime.lowering import LOWERING_VERSION
    if pipeline_fingerprint is None:
        pipeline_fingerprint = default_pipeline(
            verify_each=False).fingerprint()
    lines = [
        f"bundle={BUNDLE_FORMAT_VERSION}",
        f"cache_format={CACHE_FORMAT_VERSION}",
        f"model={model}",
        f"backend={backend}",
        f"width={width}",
        f"use_lut={use_lut}",
        f"lut_interpolation={lut_interpolation}",
        f"fuse={fuse}",
        f"arena={arena}",
        f"verify={verify}",
        f"population={population}",
        f"variant={variant}",
        f"pipeline={pipeline_fingerprint}",
        f"lowering=v{LOWERING_VERSION}",
    ]
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


@dataclass
class ArtifactKernel(GeneratedKernel):
    """A bundled kernel standing in for a freshly generated one.

    ``module`` is ``None`` — there is no IR; the lowered source in
    ``payload`` goes straight to
    :func:`~repro.runtime.lowering.compile_kernel_source`.  The runner
    recognizes this type and skips passes/verify/lowering entirely;
    the sharded runner reads the recorded ``omp_parallel`` flag instead
    of walking the (absent) module.
    """

    key: str = ""
    payload: Dict = field(default_factory=dict)
    #: did the post-pipeline module contain an ``omp.parallel`` region?
    omp_parallel: bool = False
    backend: str = ""
    variant: str = "default"


def layout_from_dict(data: Dict) -> Layout:
    return Layout(LayoutKind(data["kind"]), int(data["n_states"]),
                  int(data.get("block", 1)))


def layout_to_dict(layout: Layout) -> Dict:
    return {"kind": layout.kind.value, "n_states": layout.n_states,
            "block": layout.block}


def kernel_from_entry(entry: Dict, model=None) -> ArtifactKernel:
    """Reconstruct a runnable :class:`ArtifactKernel` from one entry.

    ``model`` is the parsed :class:`~repro.frontend.model.IonicModel`
    (loaded from the registry when omitted); LUT tables and state
    allocation need the model's semantic analysis, so callers on the
    cold-start path pass the bundle's pre-parsed blob instead
    (:meth:`ArtifactStore.load_model_blob`).
    """
    spec_d = entry["spec"]
    if model is None:
        from ..models import load_model
        model = load_model(spec_d["model"])
    layout = layout_from_dict(spec_d["layout"])
    spec = KernelSpec(model=model, mode=BackendMode(spec_d["backend"]),
                      width=int(spec_d["width"]), layout=layout,
                      use_lut=bool(spec_d["use_lut"]),
                      lut_interpolation=spec_d["lut_interpolation"],
                      function_name=spec_d["function_name"])
    return ArtifactKernel(module=None, spec=spec, layout=layout,
                          key=entry["key"], payload=entry["kernel"],
                          omp_parallel=bool(entry.get("omp_parallel",
                                                      False)),
                          backend=spec_d["backend"],
                          variant=entry.get("variant", "default"))


def _log_artifact_diagnostic(message: str, severity=None, **data) -> None:
    from ..resilience.diagnostics import (Diagnostic, Severity,
                                          log_diagnostic)
    log_diagnostic(Diagnostic(
        stage="cache", component="artifacts", message=message,
        severity=severity or Severity.WARNING, data=dict(data)))


def _count_hit() -> None:
    _metrics.counter("artifact_hits_total",
                     "AOT artifact-tier kernel hits").inc()


def _count_miss() -> None:
    _metrics.counter("artifact_misses_total",
                     "AOT artifact-tier kernel misses").inc()


class ArtifactStore:
    """Read-only access to one bundle directory.

    Strictly never writes at runtime — the directory may be a
    read-only mount shared by a whole process fleet.  Corrupt entries
    are diagnosed and counted (``artifact_corrupt_total``) but left in
    place; ``limpet-bench artifacts audit`` is the tool with write
    access that quarantines them.

    The manifest is cached per store and revalidated against the
    file's stat signature, so repeated lookups in one process do not
    re-read it but an updated bundle is picked up.
    """

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)
        self._manifest: Optional[Dict] = None
        self._manifest_sig: Optional[tuple] = None

    def entry_path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def model_path(self, name: str) -> pathlib.Path:
        return self.root / MODELS_DIR / f"{name}.pkl"

    def load_model_blob(self, name: str,
                        source_hash: Optional[str] = None):
        """The bundled pre-parsed model, or None (then parse instead).

        The blob is sha256-verified against the manifest record, and —
        when the caller passes the entry's ``source_hash`` — cross-
        checked against the source the kernel was built from, so a
        blob can never outlive the model file it parses.  Any failure
        (missing, corrupt, unpicklable after a code change) is a soft
        miss: callers fall back to :func:`repro.models.load_model`.
        """
        manifest = self.manifest()
        if manifest is None:
            return None
        record = manifest.get("models", {}).get(name)
        if not isinstance(record, dict):
            return None
        if source_hash is not None and \
                record.get("source_hash") != source_hash:
            return None
        path = self.model_path(name)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(blob).hexdigest() != record.get("checksum"):
            self._note_corrupt(path, "model blob checksum mismatch")
            return None
        import pickle
        try:
            return pickle.loads(blob)
        except Exception as err:  # noqa: BLE001 - version-drifted pickle
            _log_artifact_diagnostic(
                f"bundled model {name} failed to unpickle "
                f"({type(err).__name__}); parsing instead",
                model=name, root=str(self.root))
            return None

    def manifest_path(self) -> pathlib.Path:
        return self.root / MANIFEST_NAME

    def manifest(self) -> Optional[Dict]:
        """The parsed bundle manifest, or None (missing/unreadable)."""
        path = self.manifest_path()
        try:
            stat = path.stat()
            sig = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            self._manifest = None
            self._manifest_sig = None
            return None
        if self._manifest is not None and sig == self._manifest_sig:
            return self._manifest
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as err:
            _log_artifact_diagnostic(
                f"unreadable bundle manifest {path}: "
                f"{type(err).__name__}", root=str(self.root))
            _metrics.counter(
                "artifact_corrupt_total",
                "corrupt AOT artifact entries/manifests detected").inc()
            return None
        if not isinstance(data, dict) \
                or data.get("format") != BUNDLE_FORMAT_VERSION:
            return None
        self._manifest = data
        self._manifest_sig = sig
        return data

    def load_key(self, key: str) -> Optional[Dict]:
        """The full, checksum-verified entry for ``key``, or None.

        Does not count hit/miss metrics — callers (the runner tier,
        :func:`runner_from_store`) count at their own granularity.
        """
        from ..runtime.kernel_cache import payload_checksum
        path = self.entry_path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as err:
            self._note_corrupt(path, f"unreadable ({type(err).__name__})")
            return None
        if not isinstance(entry, dict) \
                or entry.get("format") != BUNDLE_FORMAT_VERSION:
            return None
        if entry.get("checksum") != payload_checksum(entry):
            self._note_corrupt(path, "checksum mismatch")
            return None
        return entry

    def _note_corrupt(self, path: pathlib.Path, reason: str) -> None:
        _log_artifact_diagnostic(
            f"corrupt artifact entry {path.name} left in place "
            f"(read-only tier): {reason}", entry=path.name,
            root=str(self.root))
        _metrics.counter(
            "artifact_corrupt_total",
            "corrupt AOT artifact entries/manifests detected").inc()

    def lookup_kernel(self, key: str) -> Optional[Dict]:
        """The runtime tier: the ``kernel`` payload for ``key``.

        Counts ``artifact_hits_total``/``artifact_misses_total``.
        """
        entry = self.load_key(key)
        if entry is None or not isinstance(entry.get("kernel"), dict):
            _count_miss()
            return None
        _count_hit()
        return entry["kernel"]


_STORES: Dict[str, ArtifactStore] = {}


def default_artifact_dir() -> Optional[pathlib.Path]:
    """``$LIMPET_ARTIFACT_DIR``, or None when no bundle is mounted."""
    env = os.environ.get(_ENV_DIR)
    return pathlib.Path(env) if env else None


def default_store() -> Optional[ArtifactStore]:
    """The process-wide store for ``$LIMPET_ARTIFACT_DIR``, or None.

    ``LIMPET_ARTIFACTS=off`` disables the tier even with a mounted
    bundle (mirrors ``LIMPET_KERNEL_CACHE=off``).
    """
    if os.environ.get(_ENV_DISABLE, "").lower() in ("off", "0", "no"):
        return None
    root = default_artifact_dir()
    if root is None:
        return None
    store = _STORES.get(str(root))
    if store is None:
        store = ArtifactStore(root)
        _STORES[str(root)] = store
    return store


def resolve_store(artifacts) -> Optional[ArtifactStore]:
    """Normalize a runner's ``artifacts=`` argument to a store.

    ``None`` → the env-configured default (usually None), ``False`` →
    disabled, an :class:`ArtifactStore` → itself, a path → a store on
    that path.
    """
    if artifacts is None:
        return default_store()
    if artifacts is False:
        return None
    if isinstance(artifacts, ArtifactStore):
        return artifacts
    return ArtifactStore(artifacts)


def runner_from_store(model, backend: str = "limpet_mlir",
                      width: int = 8, use_lut: bool = True,
                      lut_interpolation: str = "linear",
                      fuse: bool = True, arena: bool = False,
                      verify: bool = True, population: str = "",
                      tune: bool = False, tune_cells: int = 512,
                      tune_dt: float = 0.01, tune_db=None,
                      store: Optional[ArtifactStore] = None,
                      runner_cls=None, **runner_kwargs):
    """The zero-compile cold-start path: a runner straight from a bundle.

    Resolves the requested kernel through the manifest's spec index —
    no IR generation, no pipeline, no lowering; the only compile-stage
    work left is parsing the model file.  Returns ``None`` on any miss
    (no bundle, unknown spec, drifted model source, corrupt entry) so
    callers fall back to the ordinary JIT path.

    ``tune=True`` resolves the tuning-DB winner for the
    ``tune_cells``/``tune_dt`` workload *first* and looks up that tuned
    variant's artifact, mirroring ``KernelRunner(tune=True)``; the
    returned runner carries ``tuned_config``.
    """
    store = store if store is not None else default_store()
    if store is None:
        return None
    manifest = store.manifest()
    if manifest is None:
        return None
    name = model if isinstance(model, str) else model.name

    variant = "default"
    config = None
    if tune:
        try:
            from ..models import load_model
            from ..tuning import lookup_config
            parsed = load_model(name) if isinstance(model, str) else model
            config = lookup_config(parsed, tune_cells, tune_dt,
                                   db=tune_db, population=population)
        except Exception:
            config = None
        if config is not None and config.shards == 1:
            variant = tuned_variant_name(config)
            backend = "baseline" if config.width == 1 else backend
            width = config.width
            use_lut = config.use_lut
            lut_interpolation = config.lut_interpolation
            fuse = config.fuse
            arena = config.arena
        else:
            config = None

    fp = spec_fingerprint(name, backend, width, use_lut,
                          lut_interpolation, fuse, arena, verify,
                          population, variant)
    key = manifest.get("spec_index", {}).get(fp)
    ment = manifest.get("entries", {}).get(key) if key else None
    if ment is None:
        _count_miss()
        return None
    try:
        from ..tuning.database import model_source_hash
        current_hash = model_source_hash(name)
    except Exception:
        _count_miss()
        return None
    if ment.get("source_hash") != current_hash:
        _metrics.counter(
            "artifact_stale_total",
            "AOT artifact entries found stale (drifted inputs)").inc()
        _log_artifact_diagnostic(
            f"artifact for {name} is stale (model source drifted); "
            "falling back to JIT", model=name, key=key)
        _count_miss()
        return None
    entry = store.load_key(key)
    if entry is None:
        _count_miss()
        return None
    parsed = None if isinstance(model, str) else model
    if parsed is None:
        # the bundled pre-parsed model saves the one remaining
        # compile-stage cost (the EasyML parse + frontend analysis)
        parsed = store.load_model_blob(name, source_hash=current_hash)
    try:
        kernel = kernel_from_entry(entry, model=parsed)
    except Exception as err:
        _log_artifact_diagnostic(
            f"artifact entry {key[:12]}… unusable "
            f"({type(err).__name__}); falling back to JIT",
            model=name, key=key)
        _count_miss()
        return None
    from ..runtime.executor import KernelRunner
    cls = runner_cls or KernelRunner
    runner = cls(kernel, fuse=fuse, arena=arena,
                 artifacts=False, **runner_kwargs)
    if config is not None:
        runner.tuned_config = config
    _count_hit()
    from ..obs import ledger as _ledger
    _ledger.record_event("artifact_load", model=name, backend=backend,
                         key=key, cache="artifact", variant=variant,
                         disposition="ok")
    return runner
