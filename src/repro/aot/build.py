"""``limpet-bench build-all``: AOT-compile the zoo into a bundle.

One build pass walks every requested model (default: all 47 shipped
model files), generates its default kernel — limpetMLIR where legal,
the baseline generator for the 4 foreign-function models, recorded as
ordinary baseline-tier entries rather than errors — plus one kernel
per recorded tuning-DB winner, runs the full pipeline + verification +
lowering once, and persists the result as a checksummed bundle entry
keyed by the exact kernel-cache key a runtime JIT would compute.

The build is **idempotent**: an entry whose key is already in the
manifest and whose file passes its checksum is reused untouched, and
the manifest is rewritten only when something actually changed — a
second ``build-all`` over an up-to-date bundle is a byte-level no-op.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..codegen import generate_baseline, generate_limpet_mlir
from ..codegen.common import UnsupportedModelError
from ..ir.passes import default_pipeline
from ..models import all_model_files, load_model
from ..obs import metrics as _metrics
from ..runtime.kernel_cache import (CACHE_FORMAT_VERSION,
                                    kernel_cache_key, payload_checksum)
from ..runtime.locking import file_lock
from .bundle import (BUNDLE_FORMAT_VERSION, MANIFEST_NAME, MODELS_DIR,
                     layout_to_dict, spec_fingerprint,
                     tuned_variant_name)


@dataclass
class BuiltEntry:
    """One bundle entry's build outcome."""

    key: str
    model: str
    backend: str
    variant: str
    action: str                    # "built" | "reused" | "failed"
    seconds: float = 0.0
    error: Optional[str] = None


@dataclass
class BuildReport:
    """Outcome of one :func:`build_bundle` call."""

    root: str
    entries: List[BuiltEntry] = field(default_factory=list)
    manifest_written: bool = False

    @property
    def built(self) -> int:
        return sum(1 for e in self.entries if e.action == "built")

    @property
    def reused(self) -> int:
        return sum(1 for e in self.entries if e.action == "reused")

    @property
    def failed(self) -> List[BuiltEntry]:
        return [e for e in self.entries if e.action == "failed"]

    @property
    def ok(self) -> bool:
        return not self.failed

    def describe(self) -> str:
        head = (f"bundle {self.root}: {self.built} built, "
                f"{self.reused} reused"
                + (f", {len(self.failed)} FAILED" if self.failed else "")
                + ("" if self.manifest_written
                   else " (manifest unchanged)"))
        lines = [head]
        for entry in self.failed:
            lines.append(f"  FAILED {entry.model} [{entry.variant}]: "
                         f"{entry.error}")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        return {"root": self.root, "built": self.built,
                "reused": self.reused,
                "failed": [e.model for e in self.failed],
                "manifest_written": self.manifest_written,
                "entries": [{"key": e.key, "model": e.model,
                             "backend": e.backend, "variant": e.variant,
                             "action": e.action, "seconds": e.seconds,
                             "error": e.error}
                            for e in self.entries]}


def _tool_versions() -> Dict[str, str]:
    import numpy
    return {"python": platform.python_version(),
            "numpy": numpy.__version__}


def _fresh_manifest() -> Dict:
    return {"format": BUNDLE_FORMAT_VERSION, "created_at": None,
            "pipeline_fingerprint": None, "lowering_version": None,
            "cache_format_version": CACHE_FORMAT_VERSION,
            "tool_versions": {}, "entries": {}, "spec_index": {},
            "models": {}}


def _read_manifest(root: pathlib.Path) -> Dict:
    try:
        data = json.loads((root / MANIFEST_NAME).read_text())
    except (OSError, ValueError):
        return _fresh_manifest()
    if not isinstance(data, dict) \
            or data.get("format") != BUNDLE_FORMAT_VERSION:
        return _fresh_manifest()
    for field_name in ("entries", "spec_index", "models"):
        if not isinstance(data.get(field_name), dict):
            data[field_name] = {}
    return data


def _atomic_write(path: pathlib.Path, payload: Dict) -> None:
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _tuned_configs(db, model_name: str) -> List:
    """Recorded tuning winners for ``model_name`` (deduplicated).

    Multi-shard winners are skipped — they need a ShardedRunner whose
    kernel is the single-shard one anyway (same IR, thread-split at
    run time), so the default entry already covers them.
    """
    from ..tuning.space import TuningConfig
    configs = []
    seen = set()
    for record in db.entries().values():
        workload = record.get("workload")
        if not isinstance(workload, dict) \
                or workload.get("model") != model_name:
            continue
        try:
            config = TuningConfig.from_dict(record["config"])
        except (KeyError, TypeError, ValueError):
            continue
        if config.shards > 1:
            continue
        name = tuned_variant_name(config)
        if name in seen:
            continue
        seen.add(name)
        configs.append((config, workload))
    return configs


def build_bundle(dest: Union[str, pathlib.Path],
                 models: Optional[Sequence[str]] = None,
                 db=None, width: int = 8, use_lut: bool = True,
                 include_tuned: bool = True,
                 built_at: Optional[float] = None) -> BuildReport:
    """AOT-compile ``models`` (default: all 47) into the bundle ``dest``.

    ``db`` is the tuning database whose recorded winners get tuned
    variants bundled alongside the defaults (default: the process
    tuning DB); ``built_at`` is the provenance timestamp recorded on
    newly built entries (default: now).  Idempotent — see the module
    docstring.
    """
    from ..obs import trace as _trace
    from ..runtime.executor import KernelRunner
    from ..runtime.sharded import _module_has_omp
    from ..tuning.database import model_source_hash

    root = pathlib.Path(dest)
    root.mkdir(parents=True, exist_ok=True)
    if built_at is None:
        built_at = time.time()
    if db is None and include_tuned:
        from ..tuning.database import TuningDB
        db = TuningDB()
    names = list(models) if models else all_model_files()
    fingerprint = default_pipeline(verify_each=False).fingerprint()
    from ..runtime.lowering import LOWERING_VERSION
    tools = _tool_versions()
    manifest = _read_manifest(root)
    report = BuildReport(root=str(root))
    changed = False
    build_hist = _metrics.histogram(
        "artifact_build_seconds",
        "wall seconds to AOT-build one bundle entry")

    for name in names:
        try:
            model = load_model(name)
        except Exception as err:  # noqa: BLE001 - per-model boundary
            report.entries.append(BuiltEntry(
                key="", model=name, backend="", variant="default",
                action="failed", error=f"{type(err).__name__}: {err}"))
            continue
        if _write_model_blob(root, manifest, name, model,
                             model_source_hash(name)):
            changed = True
        variants = [("default", None, None)]
        if include_tuned and db is not None:
            for config, workload in _tuned_configs(db, name):
                variants.append((tuned_variant_name(config), config,
                                 workload))
        for variant, config, workload in variants:
            start = time.perf_counter()
            try:
                if config is not None:
                    from ..tuning import generate_for
                    generated = generate_for(model, config)
                    fuse, arena = config.fuse, config.arena
                else:
                    fuse, arena = True, False
                    try:
                        generated = generate_limpet_mlir(
                            model, width, use_lut=use_lut)
                    except UnsupportedModelError:
                        # the 4 foreign-function models: first-class
                        # baseline-tier entries, not build errors
                        generated = generate_baseline(
                            model, use_lut=use_lut)
                key = kernel_cache_key(generated, fingerprint, fuse,
                                       arena, True)
            except Exception as err:  # noqa: BLE001 - per-model boundary
                report.entries.append(BuiltEntry(
                    key="", model=name, backend="", variant=variant,
                    action="failed",
                    error=f"{type(err).__name__}: {err}"))
                continue
            backend = generated.spec.mode.value
            existing = manifest["entries"].get(key)
            if existing is not None and _entry_file_valid(root, key):
                report.entries.append(BuiltEntry(
                    key=key, model=name, backend=backend,
                    variant=variant, action="reused"))
                continue
            try:
                with _trace.span("artifact_build", model=name,
                                 variant=variant):
                    runner = KernelRunner(generated, fuse=fuse,
                                          arena=arena, cache=None,
                                          artifacts=False)
                    omp = _module_has_omp(
                        generated.module,
                        generated.spec.function_name)
                    entry = _make_entry(
                        key, generated, runner.kernel, fuse, arena,
                        variant, config, workload, omp, fingerprint,
                        LOWERING_VERSION, model_source_hash(name),
                        built_at, tools)
                with file_lock(root / ".lock"):
                    _atomic_write(root / f"{key}.json", entry)
            except Exception as err:  # noqa: BLE001 - per-model boundary
                report.entries.append(BuiltEntry(
                    key=key, model=name, backend=backend,
                    variant=variant, action="failed",
                    error=f"{type(err).__name__}: {err}"))
                continue
            seconds = time.perf_counter() - start
            build_hist.observe(seconds)
            manifest["entries"][key] = {
                "model": name, "backend": backend,
                "width": generated.spec.width, "variant": variant,
                "file": f"{key}.json", "checksum": entry["checksum"],
                "source_hash": entry["provenance"]["model_source_hash"],
                "spec_fingerprint": entry["spec_fingerprint"],
            }
            manifest["spec_index"][entry["spec_fingerprint"]] = key
            changed = True
            report.entries.append(BuiltEntry(
                key=key, model=name, backend=backend, variant=variant,
                action="built", seconds=seconds))

    if changed or manifest.get("pipeline_fingerprint") != fingerprint \
            or manifest.get("lowering_version") != LOWERING_VERSION:
        manifest["created_at"] = built_at
        manifest["pipeline_fingerprint"] = fingerprint
        manifest["lowering_version"] = LOWERING_VERSION
        manifest["tool_versions"] = tools
        with file_lock(root / ".lock"):
            _atomic_write(root / MANIFEST_NAME, manifest)
        report.manifest_written = True
    return report


def _write_model_blob(root: pathlib.Path, manifest: Dict, name: str,
                      model, source_hash: str) -> bool:
    """Pickle the parsed model into the bundle; True when (re)written.

    The blob is what lets :func:`~repro.aot.bundle.runner_from_store`
    skip the EasyML parse on cold start.  Reused untouched when the
    recorded source hash still matches and the file verifies, so a
    second build stays a byte-level no-op.
    """
    import hashlib
    import pickle
    models = manifest.setdefault("models", {})
    record = models.get(name)
    path = root / MODELS_DIR / f"{name}.pkl"
    if isinstance(record, dict) \
            and record.get("source_hash") == source_hash:
        try:
            blob = path.read_bytes()
            if hashlib.sha256(blob).hexdigest() == record.get("checksum"):
                return False
        except OSError:
            pass
    blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    with file_lock(root / ".lock"):
        tmp.write_bytes(blob)
        os.replace(tmp, path)
    models[name] = {"file": f"{MODELS_DIR}/{name}.pkl",
                    "checksum": hashlib.sha256(blob).hexdigest(),
                    "source_hash": source_hash}
    return True


def _entry_file_valid(root: pathlib.Path, key: str) -> bool:
    try:
        entry = json.loads((root / f"{key}.json").read_text())
    except (OSError, ValueError):
        return False
    return isinstance(entry, dict) \
        and entry.get("format") == BUNDLE_FORMAT_VERSION \
        and entry.get("checksum") == payload_checksum(entry)


def _make_entry(key: str, generated, kernel, fuse: bool, arena: bool,
                variant: str, config, workload, omp: bool,
                fingerprint: str, lowering_version: int,
                source_hash: str, built_at: float,
                tools: Dict) -> Dict:
    spec = generated.spec
    entry = {
        "format": BUNDLE_FORMAT_VERSION,
        "key": key,
        "variant": variant,
        "spec": {
            "model": spec.model.name,
            "backend": spec.mode.value,
            "width": spec.width,
            "layout": layout_to_dict(generated.layout),
            "use_lut": spec.use_lut,
            "lut_interpolation": spec.lut_interpolation,
            "function_name": spec.function_name,
        },
        "kernel": {
            "function_name": kernel.name,
            "source": kernel.source,
            "mode": kernel.mode,
            "width": kernel.width,
            "arg_names": list(kernel.arg_names),
            "fused": kernel.fused,
            "arena": kernel.arena is not None,
        },
        "tuning": config.as_dict() if config is not None else None,
        "tuning_workload": dict(workload) if workload else None,
        "omp_parallel": omp,
        "spec_fingerprint": spec_fingerprint(
            spec.model.name, spec.mode.value, spec.width, spec.use_lut,
            spec.lut_interpolation, fuse, arena, True, "", variant,
            pipeline_fingerprint=fingerprint),
        "provenance": {
            "model_source_hash": source_hash,
            "pipeline_fingerprint": fingerprint,
            "lowering_version": lowering_version,
            "cache_format_version": CACHE_FORMAT_VERSION,
            "built_at": built_at,
            "tool_versions": tools,
        },
    }
    entry["checksum"] = payload_checksum(entry)
    return entry
