"""Compile-time constant evaluation over the EasyML AST (paper §3.2).

"The description of an ionic model generates AST nodes with distinct
properties: some can only be computed at runtime, while others generate
a set of values with constant-qualified behavior."  This module is the
preprocessor the paper describes: it tracks constant-qualified values
(parameters and intermediates whose operands are all constants) and
folds arithmetic, mathematical and conditional operations at compile
time, so the code generator never emits them.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..easyml.ast_nodes import (Binary, Call, Expr, Name, Number, Ternary,
                                Unary)
from ..easyml.errors import SemanticError

# EasyML's convenience functions (square/cube appear in the paper's
# Listing 1) on top of the libm-equivalent set.
_FUNCTIONS = {
    "exp": math.exp,
    "expm1": math.expm1,
    "log": math.log,
    "ln": math.log,
    "log10": math.log10,
    "log2": math.log2,
    "log1p": math.log1p,
    "sqrt": math.sqrt,
    "cbrt": lambda x: math.copysign(abs(x) ** (1.0 / 3.0), x),
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "sinh": math.sinh,
    "cosh": math.cosh,
    "tanh": math.tanh,
    "fabs": abs,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "erf": math.erf,
    "pow": math.pow,
    "atan2": math.atan2,
    "square": lambda x: x * x,
    "cube": lambda x: x * x * x,
    "min": min,
    "max": max,
}

_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": math.fmod,
    "<": lambda a, b: float(a < b),
    "<=": lambda a, b: float(a <= b),
    ">": lambda a, b: float(a > b),
    ">=": lambda a, b: float(a >= b),
    "==": lambda a, b: float(a == b),
    "!=": lambda a, b: float(a != b),
    "and": lambda a, b: float(bool(a) and bool(b)),
    "or": lambda a, b: float(bool(a) or bool(b)),
}


class Preprocessor:
    """Folds and propagates compile-time constants through expressions."""

    def __init__(self, constants: Optional[Dict[str, float]] = None,
                 foreign: Optional[set] = None):
        self.constants: Dict[str, float] = dict(constants or {})
        #: call targets that are opaque external functions: never folded
        self.foreign = frozenset(foreign or ())

    def define(self, name: str, value: float) -> None:
        """Record ``name`` as a constant-qualified value."""
        self.constants[name] = float(value)

    def is_constant(self, expr: Expr) -> bool:
        """True when ``expr`` folds to a number under known constants."""
        return self.try_eval(expr) is not None

    def try_eval(self, expr: Expr) -> Optional[float]:
        """Evaluate ``expr`` if every leaf is constant, else None."""
        try:
            return self._eval(expr)
        except _NotConstant:
            return None
        except (ValueError, OverflowError, ZeroDivisionError) as err:
            raise SemanticError(
                f"constant expression {expr} fails to evaluate: {err}")

    def eval(self, expr: Expr) -> float:
        """Evaluate ``expr``; raises if it is not compile-time constant."""
        value = self.try_eval(expr)
        if value is None:
            raise SemanticError(f"expression is not constant: {expr}")
        return value

    def fold(self, expr: Expr) -> Expr:
        """Return ``expr`` with every constant subtree replaced by a Number."""
        value = self.try_eval(expr)
        if value is not None:
            return Number(value)
        if isinstance(expr, Unary):
            return Unary(expr.op, self.fold(expr.operand))
        if isinstance(expr, Binary):
            return Binary(expr.op, self.fold(expr.lhs), self.fold(expr.rhs))
        if isinstance(expr, Call):
            return Call(expr.callee, tuple(self.fold(a) for a in expr.args))
        if isinstance(expr, Ternary):
            cond_value = self.try_eval(expr.cond)
            if cond_value is not None:
                # Conditions with constant predicates collapse to a branch.
                chosen = expr.then if cond_value else expr.otherwise
                return self.fold(chosen)
            return Ternary(self.fold(expr.cond), self.fold(expr.then),
                           self.fold(expr.otherwise))
        return expr

    # -- internals -----------------------------------------------------------

    def _eval(self, expr: Expr) -> float:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Name):
            if expr.identifier in self.constants:
                return self.constants[expr.identifier]
            raise _NotConstant(expr.identifier)
        if isinstance(expr, Unary):
            value = self._eval(expr.operand)
            return -value if expr.op == "-" else float(not value)
        if isinstance(expr, Binary):
            fn = _BINARY.get(expr.op)
            if fn is None:
                raise SemanticError(f"unknown binary operator {expr.op!r}")
            return fn(self._eval(expr.lhs), self._eval(expr.rhs))
        if isinstance(expr, Ternary):
            return (self._eval(expr.then) if self._eval(expr.cond)
                    else self._eval(expr.otherwise))
        if isinstance(expr, Call):
            if expr.callee in self.foreign:
                raise _NotConstant(expr.callee)
            fn = _FUNCTIONS.get(expr.callee)
            if fn is None:
                raise SemanticError(f"unknown function {expr.callee!r}")
            return float(fn(*(self._eval(a) for a in expr.args)))
        raise SemanticError(f"unsupported expression node {expr!r}")


class _NotConstant(Exception):
    """Internal: a leaf that is not compile-time constant was reached."""
