"""Semantic analysis: from EasyML AST to :class:`IonicModel`.

This is the analog of openCARP's limpet frontend: it classifies
variables from markup, enforces the language's single-assignment
property, if-converts conditional statements into select expressions
(the SIMD-friendly form §5 discusses), topologically orders the
computations, folds compile-time constants through the preprocessor,
detects Hodgkin–Huxley gates, resolves integration methods and groups
lookup-table columns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..easyml.ast_nodes import (Assign, Binary, Call, Expr,
                                If, Markup, ModelAST, Name, Number, Stmt,
                                Ternary, Unary, free_names)
from ..easyml.errors import SemanticError
from .model import Computation, GateInfo, IonicModel, LUTTable
from .preprocessor import Preprocessor
from .symbols import (LookupSpec, Method, Variable, VarKind, diff_target,
                      gate_helper_names, init_target)

_KNOWN_MARKUPS = {"external", "nodal", "param", "lookup", "method", "units",
                  "regional", "store", "trace", "foreign"}

#: math-call or division anywhere in the tree makes an expression "costly"
#: and therefore worth tabulating in a LUT (openCARP's heuristic).
_CHEAP_CALLS = {"square", "cube", "min", "max", "fabs", "abs"}


def _is_costly(expr: Expr) -> bool:
    if isinstance(expr, Call) and expr.callee not in _CHEAP_CALLS:
        return True
    if isinstance(expr, Binary) and expr.op == "/":
        return True
    return any(_is_costly(child) for child in expr.children())


def analyze(ast: ModelAST,
            promote_params: Sequence[str] = ()) -> IonicModel:
    """Run the full frontend on a parsed model.

    ``promote_params`` names ``.param()`` variables that must *survive*
    constant folding: they stay out of the preprocessor's constant set,
    so every expression that reads them (directly or through a folded
    intermediate) remains a runtime computation and the code generators
    see them as free names bound to per-instance parameter arrays.
    This is the frontend half of population batching — the same model
    source compiles to one kernel advancing N parameter-perturbed
    instances.
    """
    return _Analyzer(ast, promote_params=promote_params).run()


class _Analyzer:
    def __init__(self, ast: ModelAST, promote_params: Sequence[str] = ()):
        self.ast = ast
        self.promote_params = tuple(dict.fromkeys(promote_params))
        self.warnings: List[str] = []
        self.variables: Dict[str, Variable] = {}
        self.foreign: Set[str] = set()
        self._if_counter = 0

    def _error(self, message: str) -> SemanticError:
        return SemanticError(f"model {self.ast.name}: {message}")

    # -- pipeline ----------------------------------------------------------------

    def run(self) -> IonicModel:
        self._collect_declarations()
        assigns = self._if_convert(self.ast.statements)
        self._check_single_assignment(assigns)
        params = self._resolve_params()
        unknown = [p for p in self.promote_params if p not in params]
        if unknown:
            raise self._error(
                f"cannot promote unknown parameter(s): "
                f"{', '.join(unknown)} (declared params: "
                f"{', '.join(sorted(params)) or '(none)'})")
        # Initial values are always evaluated at the *default* param
        # values — per-instance parameters shape the dynamics, not the
        # starting state.  Record which promoted params feed inits so
        # legality can surface the approximation.
        init_param_uses = {
            p for a in assigns if init_target(a.target) is not None
            for p in free_names(a.expr) & set(self.promote_params)}
        init_values, external_init, body = self._split_inits(assigns, params)
        ordered = self._topo_sort(body)
        # Promoted params are withheld from the folding constant set;
        # they (and everything derived from them) stay runtime names.
        runtime_constants = {k: v for k, v in params.items()
                             if k not in self.promote_params}
        pre = Preprocessor(runtime_constants, foreign=self.foreign)
        computations, folded, diffs, outputs = self._fold(ordered, pre)
        states = self._resolve_states(diffs, init_values)
        gates = self._detect_gates(states, computations, folded)
        methods = self._resolve_methods(states, gates)
        self._validate_gate_methods(states, gates, methods)
        lut_tables = self._group_luts(computations, runtime_constants,
                                      folded)
        self._add_rl_decay_columns(lut_tables, gates, methods)
        for name in self.foreign:
            self.variables.pop(name, None)
        externals = [name for name, var in self.variables.items()
                     if var.kind is VarKind.EXTERNAL]
        for name in outputs:
            self.variables[name].written = True
        # Implicitly-defined intermediates get symbol entries too, so
        # tooling can introspect every name the model binds.
        for comp in computations:
            if comp.target not in self.variables:
                self.variables[comp.target] = Variable(
                    comp.target, VarKind.INTERMEDIATE)
        return IonicModel(
            name=self.ast.name,
            variables=self.variables,
            externals=externals,
            states=states,
            params=params,
            folded_constants=folded,
            computations=computations,
            diffs=diffs,
            init_values={s: init_values.get(s, 0.0) for s in states},
            external_init=external_init,
            outputs=outputs,
            methods=methods,
            gates=gates,
            lut_tables=lut_tables,
            promoted_params=self.promote_params,
            init_param_uses=init_param_uses,
            foreign_functions=set(self.foreign),
            warnings=self.warnings,
        )

    # -- declarations ---------------------------------------------------------------

    def _collect_declarations(self) -> None:
        pending_decls = self.ast.declarations()
        for decl in pending_decls:
            var = self.variables.get(decl.name)
            if var is None:
                var = Variable(decl.name, VarKind.INTERMEDIATE)
                self.variables[decl.name] = var
            self._apply_markups(var, decl.markups)
            if decl.init is not None:
                pre = Preprocessor()
                value = pre.try_eval(decl.init)
                if value is None:
                    raise self._error(
                        f"declaration initializer of {decl.name} must be "
                        f"a constant expression")
                var.init = value

    def _apply_markups(self, var: Variable, markups: Sequence[Markup]) -> None:
        for markup in markups:
            if markup.name == "external":
                var.kind = VarKind.EXTERNAL
            elif markup.name == "param":
                var.kind = VarKind.PARAM
            elif markup.name == "nodal":
                var.nodal = True
            elif markup.name == "lookup":
                if len(markup.args) != 3:
                    raise self._error(
                        f".lookup on {var.name} needs (lo, hi, step)")
                lo, hi, step = (float(a) for a in markup.args)
                var.lookup = LookupSpec(lo, hi, step)
            elif markup.name == "method":
                if len(markup.args) != 1 or not isinstance(markup.args[0], str):
                    raise self._error(
                        f".method on {var.name} needs a method name")
                try:
                    var.method = Method.from_markup(markup.args[0])
                except ValueError as err:
                    raise self._error(str(err))
            elif markup.name == "units":
                var.units = str(markup.args[0]) if markup.args else None
            elif markup.name == "foreign":
                # the declared name is an external C function, not a
                # model variable
                self.foreign.add(var.name)
            elif markup.name in _KNOWN_MARKUPS:
                pass  # recognized but irrelevant to code generation
            else:
                self.warnings.append(
                    f"unknown markup .{markup.name}() on {var.name} ignored")

    # -- if conversion ----------------------------------------------------------------

    def _if_convert(self, stmts: Sequence[Stmt]) -> List[Assign]:
        out: List[Assign] = []
        for stmt in stmts:
            if isinstance(stmt, Assign):
                out.append(stmt)
            elif isinstance(stmt, If):
                out.extend(self._convert_if(stmt))
            # Declare/Group statements carry no runtime assignment; their
            # initializers are resolved in _collect_declarations.
        return out

    def _convert_if(self, stmt: If) -> List[Assign]:
        """Turn ``if (c) {a} else {b}`` into speculative + select form.

        Both branches execute unconditionally and targets assigned in
        both are merged with a ternary — the transformation that makes
        control flow SIMD-friendly (§5: "the vectorization of an
        if/else condition requires both blocks to be executed and
        element-wise selected according to a mask").
        """
        then_assigns = self._if_convert(stmt.then_body)
        else_assigns = self._if_convert(stmt.else_body)
        then_map = {a.target: a for a in then_assigns}
        else_map = {a.target: a for a in else_assigns}
        if len(then_map) != len(then_assigns) or \
                len(else_map) != len(else_assigns):
            raise self._error(
                f"line {stmt.line}: variable assigned twice within one "
                f"if branch (EasyML is single-assignment)")
        merged: List[Assign] = []
        both = [a.target for a in then_assigns if a.target in else_map]
        # Branch-local temporaries run speculatively under distinct
        # names; the counter keeps nested if-conversions collision-free.
        self._if_counter += 1
        tag = "" if self._if_counter == 1 else str(self._if_counter)
        suffix_t, suffix_e = f"__then{tag}", f"__else{tag}"
        renames_t = {t: t + suffix_t for t in both}
        renames_e = {t: t + suffix_e for t in both}
        for assign in then_assigns:
            target = renames_t.get(assign.target, assign.target)
            merged.append(Assign(target,
                                 _rename_expr(assign.expr, renames_t),
                                 assign.line))
        for assign in else_assigns:
            target = renames_e.get(assign.target, assign.target)
            merged.append(Assign(target,
                                 _rename_expr(assign.expr, renames_e),
                                 assign.line))
        for target in both:
            merged.append(Assign(
                target,
                Ternary(stmt.cond, Name(renames_t[target]),
                        Name(renames_e[target])),
                stmt.line))
        return merged

    # -- SSA / splitting ---------------------------------------------------------------

    def _check_single_assignment(self, assigns: Sequence[Assign]) -> None:
        seen: Set[str] = set()
        for assign in assigns:
            if assign.target in seen:
                raise self._error(
                    f"line {assign.line}: {assign.target} assigned more than "
                    f"once (EasyML expressions follow SSA, paper §2.2)")
            seen.add(assign.target)
            var = self.variables.get(assign.target)
            if var is not None and var.kind is VarKind.PARAM:
                raise self._error(
                    f"line {assign.line}: parameter {assign.target} cannot "
                    f"be assigned")

    def _split_inits(self, assigns: Sequence[Assign],
                     params: Dict[str, float]):
        """Separate ``X_init`` assignments from runtime computations."""
        init_values: Dict[str, float] = {}
        external_init: Dict[str, float] = {}
        body: List[Assign] = []
        pre = Preprocessor(params)
        for assign in assigns:
            target = init_target(assign.target)
            if target is None:
                body.append(assign)
                continue
            value = pre.try_eval(assign.expr)
            if value is None:
                raise self._error(
                    f"{assign.target} must be a constant expression")
            var = self.variables.get(target)
            if var is not None and var.kind is VarKind.EXTERNAL:
                external_init[target] = value
            else:
                init_values[target] = value
        return init_values, external_init, body

    # -- ordering ---------------------------------------------------------------------

    def _topo_sort(self, body: Sequence[Assign]) -> List[Assign]:
        """Order assignments by data dependence (EasyML is order-free)."""
        by_target = {a.target: a for a in body}
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        state_names = {diff_target(a.target) for a in body
                       if diff_target(a.target)}
        for assign in body:
            count = 0
            for dep in free_names(assign.expr):
                if dep in by_target and dep != assign.target:
                    dependents.setdefault(dep, []).append(assign.target)
                    count += 1
                elif dep not in by_target:
                    self._check_known(dep, state_names, assign)
            indegree[assign.target] = count
        # Kahn's algorithm, stable in source order.
        ready = [a.target for a in body if indegree[a.target] == 0]
        order: List[Assign] = []
        while ready:
            target = ready.pop(0)
            order.append(by_target[target])
            for dependent in dependents.get(target, ()):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
            dependents.pop(target, None)
        if len(order) != len(body):
            cyclic = sorted(t for t, d in indegree.items() if d > 0)
            raise self._error(
                f"cyclic dependency among: {', '.join(cyclic)}")
        return order

    def _check_known(self, name: str, states: Set[str],
                     assign: Assign) -> None:
        if name in states or name in self.variables:
            return
        raise self._error(
            f"line {assign.line}: {assign.target} references undefined "
            f"variable {name}")

    # -- params / folding ----------------------------------------------------------------

    def _resolve_params(self) -> Dict[str, float]:
        params: Dict[str, float] = {}
        for name, var in self.variables.items():
            if var.kind is VarKind.PARAM:
                if var.init is None:
                    raise self._error(f"parameter {name} has no value")
                params[name] = var.init
        return params

    def _fold(self, ordered: Sequence[Assign], pre: Preprocessor):
        computations: List[Computation] = []
        folded: Dict[str, float] = {}
        diffs: Dict[str, Expr] = {}
        outputs: List[str] = []
        for assign in ordered:
            expr = pre.fold(assign.expr)
            state = diff_target(assign.target)
            var = self.variables.get(assign.target)
            is_external_write = var is not None and var.kind is VarKind.EXTERNAL
            value = pre.try_eval(expr)
            if value is not None and state is None and not is_external_write:
                pre.define(assign.target, value)
                folded[assign.target] = value
                continue
            computations.append(Computation(assign.target, expr))
            if state is not None:
                diffs[state] = expr
            if is_external_write:
                outputs.append(assign.target)
        # Diff right-hand sides live in ``diffs``; drop their Computation
        # duplicates (they are emitted by the integrator, not inline) —
        # unless another computation reads the diff_X name.
        read_names: Set[str] = set()
        for comp in computations:
            read_names.update(free_names(comp.expr))
        kept = [c for c in computations
                if diff_target(c.target) is None or c.target in read_names]
        return kept, folded, diffs, outputs

    # -- states / gates / methods ------------------------------------------------------------

    def _resolve_states(self, diffs: Dict[str, Expr],
                        init_values: Dict[str, float]) -> List[str]:
        declared_order = list(self.variables)
        states = sorted(diffs, key=lambda s: (
            declared_order.index(s) if s in declared_order else 10_000,
            s))
        for state in states:
            var = self.variables.get(state)
            if var is None:
                var = Variable(state, VarKind.STATE)
                self.variables[state] = var
            elif var.kind is VarKind.INTERMEDIATE:
                var.kind = VarKind.STATE
            elif var.kind is VarKind.EXTERNAL:
                raise self._error(
                    f"external variable {state} cannot also have diff_"
                    f"{state} (externals are advanced by the solver stage)")
            if state not in init_values:
                self.warnings.append(
                    f"state {state} has no {state}_init; defaulting to 0.0")
        return states

    def _detect_gates(self, states: Sequence[str],
                      computations: Sequence[Computation],
                      folded: Dict[str, float]) -> Dict[str, GateInfo]:
        defined = {c.target for c in computations} | set(folded)
        gates: Dict[str, GateInfo] = {}
        for state in states:
            (inf, tau), (alpha, beta) = gate_helper_names(state)
            if inf in defined and tau in defined:
                gates[state] = GateInfo("inf_tau", inf=inf, tau=tau)
            elif alpha in defined and beta in defined:
                gates[state] = GateInfo("alpha_beta", alpha=alpha, beta=beta)
        return gates

    def _resolve_methods(self, states: Sequence[str],
                         gates: Dict[str, GateInfo]) -> Dict[str, Method]:
        methods: Dict[str, Method] = {}
        for state in states:
            var = self.variables[state]
            if var.method is not None:
                methods[state] = var.method
            elif state in gates:
                # Rush–Larsen "is the preferred method for simulating
                # gates" (§3.3.2); openCARP applies it to detected gates.
                methods[state] = Method.RUSH_LARSEN
            else:
                methods[state] = Method.FE
        return methods

    def _validate_gate_methods(self, states: Sequence[str],
                               gates: Dict[str, GateInfo],
                               methods: Dict[str, Method]) -> None:
        for state in states:
            needs_gate = methods[state] in (Method.RUSH_LARSEN,
                                            Method.SUNDNES)
            if needs_gate and state not in gates:
                raise self._error(
                    f"{state} uses {methods[state].value} but has no "
                    f"{state}_inf/tau_{state} (or alpha/beta) definitions")

    # -- lookup tables ------------------------------------------------------------------------

    def _group_luts(self, computations: Sequence[Computation],
                    params: Dict[str, float],
                    folded: Dict[str, float]) -> List[LUTTable]:
        tables: List[LUTTable] = []
        constant_names = set(params) | set(folded)
        for name, var in self.variables.items():
            if var.lookup is None:
                continue
            table = LUTTable(name, var.lookup)
            column_names: Set[str] = set()
            for comp in computations:
                if diff_target(comp.target) is not None:
                    continue
                if comp.target in self.variables and \
                        self.variables[comp.target].kind is VarKind.EXTERNAL:
                    continue
                deps = free_names(comp.expr)
                allowed = {name} | constant_names | column_names
                if _calls_foreign(comp.expr, self.foreign):
                    continue  # opaque calls cannot be tabulated
                if deps <= allowed and _is_costly(comp.expr):
                    table.columns.append(comp)
                    column_names.add(comp.target)
            if table.columns:
                tables.append(table)
        return tables

    def _add_rl_decay_columns(self, tables: List[LUTTable],
                              gates: Dict[str, GateInfo],
                              methods: Dict[str, Method]) -> None:
        """Tabulate the Rush–Larsen update factors (openCARP does too).

        The per-step time step is fixed, so for a gate whose rates are
        LUT columns the whole RL update collapses to interpolated
        columns: ``x_inf`` and ``exp(-dt/tau)``.  The synthetic columns
        reference ``dt``, which the LUT builder resolves at tabulation
        time (tables are rebuilt when dt changes).
        """
        for state, gate in gates.items():
            if methods.get(state) is not Method.RUSH_LARSEN:
                continue
            needed = ((gate.inf, gate.tau) if gate.form == "inf_tau"
                      else (gate.alpha, gate.beta))
            for table in tables:
                names = set(table.column_names)
                if not set(needed) <= names:
                    continue
                if gate.form == "inf_tau":
                    decay = Call("exp", (Unary("-", Binary(
                        "/", Name("dt"), Name(gate.tau))),))
                else:
                    rate_sum = Binary("+", Name(gate.alpha),
                                      Name(gate.beta))
                    table.columns.append(Computation(
                        f"_rl_inf_{state}",
                        Binary("/", Name(gate.alpha), rate_sum)))
                    decay = Call("exp", (Unary("-", Binary(
                        "*", Name("dt"), rate_sum)),))
                table.columns.append(Computation(f"_rl_decay_{state}",
                                                 decay))
                break


def _calls_foreign(expr: Expr, foreign: Set[str]) -> bool:
    """True when any Call in ``expr`` targets a foreign function."""
    if not foreign:
        return False
    from ..easyml.ast_nodes import walk_expr
    return any(isinstance(node, Call) and node.callee in foreign
               for node in walk_expr(expr))


def _rename_expr(expr: Expr, renames: Dict[str, str]) -> Expr:
    """Rewrite Name leaves according to ``renames``."""
    if not renames:
        return expr
    if isinstance(expr, Name):
        return Name(renames.get(expr.identifier, expr.identifier))
    if isinstance(expr, Unary):
        return Unary(expr.op, _rename_expr(expr.operand, renames))
    if isinstance(expr, Binary):
        return Binary(expr.op, _rename_expr(expr.lhs, renames),
                      _rename_expr(expr.rhs, renames))
    if isinstance(expr, Call):
        return Call(expr.callee,
                    tuple(_rename_expr(a, renames) for a in expr.args))
    if isinstance(expr, Ternary):
        return Ternary(_rename_expr(expr.cond, renames),
                       _rename_expr(expr.then, renames),
                       _rename_expr(expr.otherwise, renames))
    return expr
