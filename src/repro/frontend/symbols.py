"""Symbol classification for ionic models.

Mirrors what openCARP's limpet frontend derives from markup:

* **external** variables (``.external()``) cross the cell membrane
  boundary — ``Vm`` (potential, read) and ``Iion`` (current, written)
  in the common case; read into locals at loop entry and written back
  at loop exit (Listing 2, lines 5 and 31).
* **parameters** (``.param()``) are shared read-only constants.
* **state** variables are those with a ``diff_X`` equation; they live
  in the per-cell private state struct and are advanced by an
  integration method.
* **gates** are state variables whose dynamics follow the classic
  Hodgkin–Huxley form; Rush–Larsen style integrators apply to them.
* everything else assigned in the model is an **intermediate**,
  recomputed every step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class VarKind(enum.Enum):
    EXTERNAL = "external"
    PARAM = "param"
    STATE = "state"
    INTERMEDIATE = "intermediate"


class Method(enum.Enum):
    """Integration methods implemented by limpetMLIR (§3.3.2)."""

    FE = "fe"
    RK2 = "rk2"
    RK4 = "rk4"
    RUSH_LARSEN = "rush_larsen"
    SUNDNES = "sundnes"
    MARKOV_BE = "markov_be"

    @classmethod
    def from_markup(cls, name: str) -> "Method":
        try:
            return cls(name.lower())
        except ValueError as err:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown integration method {name!r} (expected one of "
                f"{valid})") from err


@dataclass(frozen=True)
class LookupSpec:
    """A ``.lookup(lo, hi, step)`` markup: tabulation domain for a var."""

    lo: float
    hi: float
    step: float

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError(f"lookup step must be positive, got {self.step}")
        if self.hi <= self.lo:
            raise ValueError(
                f"lookup range is empty: [{self.lo}, {self.hi}]")

    @property
    def n_rows(self) -> int:
        return int(round((self.hi - self.lo) / self.step)) + 1


@dataclass
class Variable:
    """One model variable with its resolved classification and markup."""

    name: str
    kind: VarKind
    init: Optional[float] = None
    nodal: bool = False
    units: Optional[str] = None
    lookup: Optional[LookupSpec] = None
    method: Optional[Method] = None
    is_gate: bool = False
    written: bool = False          # external vars: assigned by the model

    def __repr__(self) -> str:
        extra = []
        if self.init is not None:
            extra.append(f"init={self.init}")
        if self.lookup:
            extra.append("lookup")
        if self.method:
            extra.append(self.method.value)
        if self.is_gate:
            extra.append("gate")
        inner = ", ".join(extra)
        return f"<{self.kind.value} {self.name}{' ' + inner if inner else ''}>"


DIFF_PREFIX = "diff_"
INIT_SUFFIX = "_init"


def diff_target(name: str) -> Optional[str]:
    """``diff_u1`` -> ``u1``; None when ``name`` is not a diff variable."""
    if name.startswith(DIFF_PREFIX) and len(name) > len(DIFF_PREFIX):
        return name[len(DIFF_PREFIX):]
    return None


def init_target(name: str) -> Optional[str]:
    """``u1_init`` -> ``u1``; None when ``name`` is not an init variable."""
    if name.endswith(INIT_SUFFIX) and len(name) > len(INIT_SUFFIX):
        return name[:-len(INIT_SUFFIX)]
    return None


def gate_helper_names(state: str) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    """Names that mark ``state`` as a Hodgkin–Huxley gate.

    Returns ((inf, tau), (alpha, beta)) candidate helper-variable names.
    """
    return ((f"{state}_inf", f"tau_{state}"),
            (f"alpha_{state}", f"beta_{state}"))
