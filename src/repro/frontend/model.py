"""The analyzed ionic model: what the code generators consume.

:class:`IonicModel` is the common hand-off point between the limpet
frontend (this package) and both backends (``repro.codegen.limpet_c``
and ``repro.codegen.limpet_mlir``), exactly as the AST produced by
openCARP's Python limpet frontend is shared between limpetC++ and
limpetMLIR (Figure 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..easyml.ast_nodes import Expr, free_names
from .symbols import LookupSpec, Method, Variable


@dataclass
class Computation:
    """One runtime assignment ``target = expr`` in evaluation order."""

    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass
class GateInfo:
    """Rush–Larsen form of a gate's dynamics.

    Either ``inf``/``tau`` (steady state and time constant) or
    ``alpha``/``beta`` (opening/closing rates, from which
    inf = a/(a+b) and tau = 1/(a+b)).
    """

    form: str                     # "inf_tau" or "alpha_beta"
    inf: Optional[str] = None
    tau: Optional[str] = None
    alpha: Optional[str] = None
    beta: Optional[str] = None


@dataclass
class LUTTable:
    """A lookup table keyed by one variable (``.lookup(lo,hi,step)``).

    ``columns`` are the tabulated intermediates, in evaluation order;
    at runtime a row is produced by linear interpolation between
    precomputed rows (scalar in the baseline, vectorized in
    limpetMLIR, §3.4.2).
    """

    var: str
    spec: LookupSpec
    columns: List[Computation] = field(default_factory=list)

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @property
    def column_names(self) -> List[str]:
        return [c.target for c in self.columns]


@dataclass
class IonicModel:
    """A fully analyzed ionic model, ready for code generation."""

    name: str
    variables: Dict[str, Variable]
    #: external variables in declaration order (e.g. ["Vm", "Iion"])
    externals: List[str]
    #: state variables in declaration order; defines the state-struct layout
    states: List[str]
    #: shared read-only parameters (resolved to their constant values)
    params: Dict[str, float]
    #: intermediates folded away at compile time by the preprocessor
    folded_constants: Dict[str, float]
    #: runtime intermediates, topologically ordered
    computations: List[Computation]
    #: state -> right-hand side of its ODE
    diffs: Dict[str, Expr]
    #: state -> initial value
    init_values: Dict[str, float]
    #: external -> initial value (for standalone bench runs)
    external_init: Dict[str, float]
    #: externals written by the model (e.g. ["Iion"])
    outputs: List[str]
    #: state -> integration method
    methods: Dict[str, Method]
    #: state -> gate decomposition (only for gates)
    gates: Dict[str, GateInfo]
    #: lookup tables, one per ``.lookup`` variable that owns columns
    lut_tables: List[LUTTable] = field(default_factory=list)
    #: parameters promoted to per-instance runtime arrays (population
    #: batching): these keep their default in ``params`` but are no
    #: longer folded — kernels take one extra array argument per name
    promoted_params: tuple = ()
    #: promoted parameters that also appear in ``_init`` expressions;
    #: initial values stay baked at the default, so per-instance values
    #: do not move the starting state (legality surfaces a warning)
    init_param_uses: Set[str] = field(default_factory=set)
    #: names declared ``.foreign()``: external C functions the model
    #: calls; the baseline passes them through, limpetMLIR rejects them
    #: (this is what bounds support to 43 of 47 models, §3.3.2)
    foreign_functions: Set[str] = field(default_factory=set)
    #: analysis warnings (kept, not printed, so tools can surface them)
    warnings: List[str] = field(default_factory=list)

    # -- derived views ---------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.states)

    def method_of(self, state: str) -> Method:
        return self.methods[state]

    def lut_for(self, var: str) -> Optional[LUTTable]:
        for table in self.lut_tables:
            if table.var == var:
                return table
        return None

    @property
    def lut_column_names(self) -> Set[str]:
        names: Set[str] = set()
        for table in self.lut_tables:
            names.update(table.column_names)
        return names

    def computations_excluding_lut(self) -> List[Computation]:
        """Runtime computations minus those served by LUT interpolation."""
        lut_names = self.lut_column_names
        return [c for c in self.computations if c.target not in lut_names]

    def dependencies_of(self, target: str) -> Set[str]:
        """Transitive free variables feeding ``target``'s computation."""
        by_name = {c.target: c for c in self.computations}
        seen: Set[str] = set()
        frontier = [target]
        while frontier:
            name = frontier.pop()
            comp = by_name.get(name)
            if comp is None:
                continue
            for dep in free_names(comp.expr):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        return seen

    def stage_computations(self, state: str) -> List[Computation]:
        """Computations that must be re-evaluated when ``state`` changes.

        Multi-stage integrators (rk2/rk4/sundnes/markov_be) re-evaluate
        ``diff_state`` at intermediate state values (Listing 2, lines
        20–26): every intermediate on the path from ``state`` to
        ``diff_state`` is re-emitted with the substituted value.
        """
        diff_deps = set(free_names(self.diffs[state]))
        by_name = {c.target: c for c in self.computations}
        needed: List[Computation] = []
        # Walk computations in order, keeping those that transitively
        # depend on `state` and feed the diff expression.
        depends_on_state: Set[str] = {state}
        for comp in self.computations:
            deps = free_names(comp.expr)
            if deps & depends_on_state:
                depends_on_state.add(comp.target)
        # Now collect, in order, computations that feed diff and depend
        # on the state.
        feeds_diff: Set[str] = set(diff_deps)
        for comp in reversed(self.computations):
            if comp.target in feeds_diff:
                feeds_diff.update(free_names(comp.expr))
        for comp in self.computations:
            if comp.target in feeds_diff and comp.target in depends_on_state:
                needed.append(comp)
        return needed

    def describe(self) -> str:
        """A human-readable summary used by the CLI and examples."""
        lines = [f"ionic model {self.name}:"]
        lines.append(f"  externals: {', '.join(self.externals) or '(none)'}")
        lines.append(f"  states ({len(self.states)}): {', '.join(self.states)}")
        for state in self.states:
            method = self.methods[state].value
            gate = " [gate]" if state in self.gates else ""
            lines.append(f"    {state}: init={self.init_values[state]!r} "
                         f"method={method}{gate}")
        lines.append(f"  params ({len(self.params)}): "
                     f"{', '.join(sorted(self.params)) or '(none)'}")
        lines.append(f"  runtime computations: {len(self.computations)}"
                     f" (+{len(self.folded_constants)} folded)")
        for table in self.lut_tables:
            lines.append(f"  LUT on {table.var}: {table.n_columns} columns x "
                         f"{table.spec.n_rows} rows "
                         f"[{table.spec.lo}, {table.spec.hi}] "
                         f"step {table.spec.step}")
        return "\n".join(lines)
