"""The limpet frontend: semantic analysis of parsed EasyML models."""

from .analysis import analyze
from .model import Computation, GateInfo, IonicModel, LUTTable
from .preprocessor import Preprocessor
from .symbols import LookupSpec, Method, Variable, VarKind

__all__ = ["analyze", "Computation", "GateInfo", "IonicModel", "LUTTable",
           "Preprocessor", "LookupSpec", "Method", "Variable", "VarKind"]


def load_model(source: str, name: str = "model", promote_params=()):
    """Parse + analyze EasyML source in one call."""
    from ..easyml import parse_model
    from ..obs import trace as _trace

    with _trace.span("parse", model=name):
        ast = parse_model(source, name)
    with _trace.span("frontend", model=name):
        return analyze(ast, promote_params=promote_params)


def load_model_file(path, promote_params=()):
    """Parse + analyze an EasyML ``.model`` file."""
    from ..easyml import parse_model_file
    from ..obs import trace as _trace

    with _trace.span("parse", file=str(path)):
        ast = parse_model_file(path)
    with _trace.span("frontend", model=ast.name):
        return analyze(ast, promote_params=promote_params)
