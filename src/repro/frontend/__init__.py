"""The limpet frontend: semantic analysis of parsed EasyML models."""

from .analysis import analyze
from .model import Computation, GateInfo, IonicModel, LUTTable
from .preprocessor import Preprocessor
from .symbols import LookupSpec, Method, Variable, VarKind

__all__ = ["analyze", "Computation", "GateInfo", "IonicModel", "LUTTable",
           "Preprocessor", "LookupSpec", "Method", "Variable", "VarKind"]


def load_model(source: str, name: str = "model"):
    """Parse + analyze EasyML source in one call."""
    from ..easyml import parse_model

    return analyze(parse_model(source, name))


def load_model_file(path):
    """Parse + analyze an EasyML ``.model`` file."""
    from ..easyml import parse_model_file

    return analyze(parse_model_file(path))
