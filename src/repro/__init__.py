"""limpetMLIR reproduction — MLIR-style code generation for cardiac
ionic models.

Reproduces Thangamani, Trevisan Jost, Loechner, Genaud & Bramas,
"Lifting Code Generation of Cardiac Physiology Simulation to Novel
Compiler Technology", CGO 2023.  See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import load_model, generate_limpet_mlir, KernelRunner

    model = load_model("Courtemanche")            # one of 43 models
    kernel = generate_limpet_mlir(model, width=8)  # AVX-512-style lanes
    runner = KernelRunner(kernel)                  # optimize + lower
    result = runner.simulate(n_cells=8192, n_steps=1000)

The package layers, bottom-up:

* :mod:`repro.easyml` — the EasyML DSL (lexer, parser, AST);
* :mod:`repro.frontend` — the limpet frontend (analysis, preprocessor);
* :mod:`repro.ir` — the MLIR-style SSA IR, dialects and passes;
* :mod:`repro.codegen` — baseline, limpetMLIR and icc_simd backends;
* :mod:`repro.runtime` — lowering to executable kernels, LUTs, driver;
* :mod:`repro.machine` — the calibrated Cascade Lake cost model;
* :mod:`repro.models` — the 43-model suite;
* :mod:`repro.bench` — the bench harness regenerating every figure;
* :mod:`repro.resilience` — backend fallback chain, sandboxed passes,
  numerical watchdog, fault injection;
* :mod:`repro.tuning` — the cost-model-guided kernel autotuner with a
  persistent tuning database.
"""

from .easyml import parse_model, parse_model_file
from .frontend import IonicModel, Method, analyze
from .frontend import load_model as load_model_source
from .frontend import load_model_file
from .codegen import (BackendMode, GeneratedKernel, KernelSpec, Layout,
                      aos, aosoa, generate_baseline, generate_icc_simd,
                      generate_limpet_mlir, soa)
from .runtime import (KernelRunner, RunResult, SimulationState, Stimulus,
                      TrajectoryComparison, compare_trajectories)
from .resilience import (Diagnostic, FaultInjector, FaultPlan, HealthReport,
                         NumericalDivergenceError, ResilientCompileError,
                         ResilientKernel, WatchdogConfig, compile_resilient)
from .machine import (AVX2, AVX512, CASCADE_LAKE, SSE, CostModel,
                      profile_kernel)
from .models import ALL_MODELS, SIZE_CLASS, list_models, load_model
from .bench import ModeledBench, geomean, run_measured
from .tuning import (TuningConfig, TuningDB, TuningResult, autotune,
                     tuned_runner)

__version__ = "1.0.0"

__all__ = [
    "parse_model", "parse_model_file", "IonicModel", "Method", "analyze",
    "load_model_source", "load_model_file", "BackendMode",
    "GeneratedKernel", "KernelSpec", "Layout", "aos", "aosoa", "soa",
    "generate_baseline", "generate_icc_simd", "generate_limpet_mlir",
    "KernelRunner", "RunResult", "SimulationState", "Stimulus",
    "compare_trajectories", "AVX2", "AVX512", "CASCADE_LAKE", "SSE",
    "CostModel", "profile_kernel", "ALL_MODELS", "SIZE_CLASS",
    "list_models", "load_model", "ModeledBench", "geomean",
    "run_measured", "TrajectoryComparison", "Diagnostic", "FaultInjector",
    "FaultPlan", "HealthReport", "NumericalDivergenceError",
    "ResilientCompileError", "ResilientKernel", "WatchdogConfig",
    "compile_resilient", "TuningConfig", "TuningDB", "TuningResult",
    "autotune", "tuned_runner", "__version__",
]
