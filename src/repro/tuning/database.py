"""The persistent tuning database: workload -> tuned configuration.

One JSON file maps content-addressed workload keys to tuning records
(the winning :class:`~repro.tuning.space.TuningConfig` plus the
predicted-vs-measured ranking evidence behind it).  The key follows
the kernel cache's discipline (``repro.runtime.kernel_cache``): it
hashes everything that could change the *answer* —

* the model's **source file bytes** (any edit retunes),
* the integrator summary (per-state integration methods),
* the run shape (``n_cells``, ``dt``) and machine name,
* the **pass-pipeline fingerprint** and the **lowering version**
  (a new optimization or lowering strategy shifts the optimum),
* the DB schema version (:data:`TUNE_DB_VERSION`).

``$LIMPET_TUNE_DB`` overrides the file location; records with a stale
schema version are ignored (treated as a miss).  Writes are atomic
(tmp file + rename) so concurrent tuners cannot corrupt the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import Dict, Optional, Union

from ..ir.passes import default_pipeline
from ..models import model_entry
from .space import TuningConfig, Workload

#: bump to invalidate every tuning decision at once
TUNE_DB_VERSION = 1

_ENV_DB = "LIMPET_TUNE_DB"


def model_source_hash(model_name: str) -> str:
    """sha256 of the model's EasyML source file bytes."""
    path = model_entry(model_name).path
    return hashlib.sha256(path.read_bytes()).hexdigest()


def tuning_db_key(workload: Workload,
                  pipeline_fingerprint: Optional[str] = None,
                  source_hash: Optional[str] = None) -> str:
    """Content address of one workload's tuning decision.

    ``pipeline_fingerprint`` defaults to the default pass pipeline's;
    ``source_hash`` to the registry file's hash (override both in
    tests to prove invalidation).
    """
    from ..runtime.lowering import LOWERING_VERSION
    if pipeline_fingerprint is None:
        pipeline_fingerprint = default_pipeline(
            verify_each=False).fingerprint()
    if source_hash is None:
        source_hash = model_source_hash(workload.model)
    material = "\n".join([
        f"format={TUNE_DB_VERSION}",
        f"model={workload.model}",
        f"source={source_hash}",
        f"integrator={workload.integrator}",
        f"n_cells={workload.n_cells}",
        f"dt={workload.dt!r}",
        f"machine={workload.machine}",
        f"pipeline={pipeline_fingerprint}",
        f"lowering=v{LOWERING_VERSION}",
    ])
    return hashlib.sha256(material.encode()).hexdigest()


def default_db_path() -> pathlib.Path:
    """``$LIMPET_TUNE_DB`` or ``~/.cache/limpet-repro/tuning.json``."""
    env = os.environ.get(_ENV_DB)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "limpet-repro" / "tuning.json"


class TuningDB:
    """A single JSON file of tuning records, schema-versioned."""

    def __init__(self, path: Union[str, pathlib.Path, None] = None):
        self.path = pathlib.Path(path) if path is not None \
            else default_db_path()

    # -- raw file I/O -------------------------------------------------------------

    def _read(self) -> Dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {"format": TUNE_DB_VERSION, "entries": {}}
        if data.get("format") != TUNE_DB_VERSION:
            return {"format": TUNE_DB_VERSION, "entries": {}}
        if not isinstance(data.get("entries"), dict):
            data["entries"] = {}
        return data

    def _write(self, data: Dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(data, indent=2) + "\n")
        os.replace(tmp, self.path)

    # -- records ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The stored record for ``key``, or None."""
        return self._read()["entries"].get(key)

    def get_config(self, key: str) -> Optional[TuningConfig]:
        """Just the winning configuration for ``key``, or None."""
        record = self.get(key)
        if record is None:
            return None
        try:
            return TuningConfig.from_dict(record["config"])
        except (KeyError, TypeError, ValueError):
            return None                 # corrupt record: treat as miss

    def put(self, key: str, record: Dict) -> None:
        data = self._read()
        record = dict(record)
        record.setdefault("stored_at", time.time())
        data["entries"][key] = record
        self._write(data)

    def delete(self, key: str) -> bool:
        data = self._read()
        if key not in data["entries"]:
            return False
        del data["entries"][key]
        self._write(data)
        return True

    def clear(self) -> int:
        """Drop every record; returns how many were removed."""
        data = self._read()
        removed = len(data["entries"])
        data["entries"] = {}
        self._write(data)
        return removed

    def entries(self) -> Dict[str, Dict]:
        return dict(self._read()["entries"])

    def __len__(self) -> int:
        return len(self._read()["entries"])
