"""The persistent tuning database: workload -> tuned configuration.

One JSON file maps content-addressed workload keys to tuning records
(the winning :class:`~repro.tuning.space.TuningConfig` plus the
predicted-vs-measured ranking evidence behind it).  The key follows
the kernel cache's discipline (``repro.runtime.kernel_cache``): it
hashes everything that could change the *answer* —

* the model's **source file bytes** (any edit retunes),
* the integrator summary (per-state integration methods),
* the run shape (``n_cells``, ``dt``) and machine name,
* the **pass-pipeline fingerprint** and the **lowering version**
  (a new optimization or lowering strategy shifts the optimum),
* the DB schema version (:data:`TUNE_DB_VERSION`).

``$LIMPET_TUNE_DB`` overrides the file location; records with a stale
schema version are ignored (treated as a miss).

Crash safety (the DB is shared by concurrent tuners and, with the
supervised tier, by worker processes):

* writes are atomic (tmp file + rename) so a torn write can never be
  observed, and read-modify-write cycles (``put``/``delete``/``clear``)
  additionally hold an **advisory flock**
  (:mod:`repro.runtime.locking`) so concurrent writers serialize
  instead of dropping each other's records;
* every record carries a **sha256 checksum**, verified on read: a
  tampered or torn record is **quarantined** (appended to
  ``<db>.quarantine.json``, logged as a Diagnostic and counted in
  ``tuning_db_corrupt_total``) and treated as a miss instead of
  poisoning every consumer;
* an **unparsable DB file** is renamed to ``<db>.corrupt-<pid>`` and
  the DB restarts empty (with a Diagnostic), never crashing readers;
* an **unwritable path** degrades to in-memory operation with a
  Diagnostic instead of raising at first write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
from typing import Dict, Optional, Union

from ..ir.passes import default_pipeline
from ..models import model_entry
from ..obs import metrics as _metrics
from ..runtime.locking import file_lock
from .space import TuningConfig, Workload

#: bump to invalidate every tuning decision at once
#: (v2: records carry a checksum, verified on read)
TUNE_DB_VERSION = 2

_ENV_DB = "LIMPET_TUNE_DB"


def model_source_hash(model_name: str) -> str:
    """sha256 of the model's EasyML source file bytes."""
    path = model_entry(model_name).path
    return hashlib.sha256(path.read_bytes()).hexdigest()


def tuning_db_key(workload: Workload,
                  pipeline_fingerprint: Optional[str] = None,
                  source_hash: Optional[str] = None) -> str:
    """Content address of one workload's tuning decision.

    ``pipeline_fingerprint`` defaults to the default pass pipeline's;
    ``source_hash`` to the registry file's hash (override both in
    tests to prove invalidation).
    """
    from ..runtime.lowering import LOWERING_VERSION
    if pipeline_fingerprint is None:
        pipeline_fingerprint = default_pipeline(
            verify_each=False).fingerprint()
    if source_hash is None:
        source_hash = model_source_hash(workload.model)
    lines = [
        f"format={TUNE_DB_VERSION}",
        f"model={workload.model}",
        f"source={source_hash}",
        f"integrator={workload.integrator}",
        f"n_cells={workload.n_cells}",
        f"dt={workload.dt!r}",
        f"machine={workload.machine}",
        f"pipeline={pipeline_fingerprint}",
        f"lowering=v{LOWERING_VERSION}",
    ]
    # population-shape line only when present: pre-population keys (and
    # every existing DB record) are unchanged
    if getattr(workload, "population", ""):
        lines.append(f"population={workload.population}")
    material = "\n".join(lines)
    return hashlib.sha256(material.encode()).hexdigest()


def record_checksum(record: Dict) -> str:
    """sha256 over the canonical JSON of ``record`` minus ``checksum``."""
    material = {k: v for k, v in record.items() if k != "checksum"}
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()).hexdigest()


def default_db_path() -> pathlib.Path:
    """``$LIMPET_TUNE_DB`` or ``~/.cache/limpet-repro/tuning.json``."""
    env = os.environ.get(_ENV_DB)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "limpet-repro" / "tuning.json"


def _log_db_diagnostic(message: str, error: Optional[BaseException] = None,
                       **data) -> None:
    from ..resilience.diagnostics import (Diagnostic, Severity,
                                          log_diagnostic)
    if error is not None:
        log_diagnostic(Diagnostic.from_exception(
            stage="cache", component="tuning_db", exc=error,
            severity=Severity.WARNING, with_traceback=False, **data))
    else:
        log_diagnostic(Diagnostic(
            stage="cache", component="tuning_db", message=message,
            severity=Severity.WARNING, data=dict(data)))


class TuningDB:
    """A single JSON file of tuning records, schema-versioned.

    Checksum-verified on read, flock-serialized on mutation, and
    degrading to in-memory operation when the path is unwritable.
    """

    def __init__(self, path: Union[str, pathlib.Path, None] = None):
        self.path = pathlib.Path(path) if path is not None \
            else default_db_path()
        #: non-None once the DB degraded to memory-only operation
        self._memory: Optional[Dict] = None

    @property
    def in_memory(self) -> bool:
        """True when the DB degraded to memory-only operation."""
        return self._memory is not None

    # -- raw file I/O -------------------------------------------------------------

    def _lock_path(self) -> pathlib.Path:
        return self.path.with_suffix(self.path.suffix + ".lock")

    def _quarantine_path(self) -> pathlib.Path:
        return self.path.with_suffix(self.path.suffix + ".quarantine.json")

    def _empty(self) -> Dict:
        return {"format": TUNE_DB_VERSION, "entries": {}}

    def _read(self) -> Dict:
        if self._memory is not None:
            return self._memory
        try:
            data = json.loads(self.path.read_text())
        except FileNotFoundError:
            return self._empty()
        except (OSError, ValueError) as err:
            self._quarantine_file(err)
            return self._empty()
        if not isinstance(data, dict) \
                or data.get("format") != TUNE_DB_VERSION:
            return self._empty()
        if not isinstance(data.get("entries"), dict):
            data["entries"] = {}
        return data

    def _quarantine_file(self, error: BaseException) -> None:
        """Move an unparsable DB file aside; the DB restarts empty."""
        target = self.path.with_suffix(
            self.path.suffix + f".corrupt-{os.getpid()}")
        try:
            os.replace(self.path, target)
        except OSError:
            target = None
        _log_db_diagnostic(
            f"tuning DB unreadable, quarantined to {target}", error,
            path=str(self.path),
            quarantined_to=str(target) if target else None)
        _metrics.counter("tuning_db_corrupt_total",
                         "corrupt tuning-DB records/files quarantined").inc()

    def _quarantine_record(self, key: str, record: Dict,
                           reason: str) -> None:
        """Append a corrupt record to the sidecar quarantine file."""
        if self._memory is None:
            try:
                qpath = self._quarantine_path()
                try:
                    quarantined = json.loads(qpath.read_text())
                    if not isinstance(quarantined, dict):
                        quarantined = {}
                except (OSError, ValueError):
                    quarantined = {}
                quarantined[key] = {"record": record, "reason": reason,
                                    "quarantined_at": time.time()}
                tmp = qpath.with_suffix(f".{os.getpid()}.tmp")
                tmp.write_text(json.dumps(quarantined, indent=2))
                os.replace(tmp, qpath)
            except OSError:
                pass
        _log_db_diagnostic(
            f"quarantined corrupt tuning record {key[:12]}…: {reason}",
            key=key, reason=reason)
        _metrics.counter("tuning_db_corrupt_total",
                         "corrupt tuning-DB records/files quarantined").inc()

    def _write(self, data: Dict) -> None:
        if self._memory is not None:
            self._memory = data
            return
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(data, indent=2) + "\n")
            os.replace(tmp, self.path)
        except OSError as err:
            try:
                tmp.unlink()
            except OSError:
                pass
            self._memory = data
            _log_db_diagnostic("tuning DB path unwritable, degrading to "
                               "in-memory operation", err,
                               path=str(self.path))
            _metrics.counter(
                "cache_memory_fallbacks_total",
                "persistent tiers degraded to in-memory operation").inc()

    # -- records ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict]:
        """The stored record for ``key``, or None.

        Records failing their checksum are quarantined (removed from
        the DB, appended to the sidecar quarantine file) and reported
        as a miss.
        """
        data = self._read()
        record = data["entries"].get(key)
        if record is None:
            return None
        if not isinstance(record, dict) \
                or record.get("checksum") != record_checksum(record):
            self._quarantine_record(
                key, record if isinstance(record, dict) else {"raw": record},
                "checksum mismatch")
            with file_lock(self._lock_path()):
                data = self._read()
                if key in data["entries"]:
                    del data["entries"][key]
                    self._write(data)
            return None
        return record

    def get_config(self, key: str) -> Optional[TuningConfig]:
        """Just the winning configuration for ``key``, or None."""
        record = self.get(key)
        if record is None:
            return None
        try:
            return TuningConfig.from_dict(record["config"])
        except (KeyError, TypeError, ValueError):
            return None                 # corrupt record: treat as miss

    def put(self, key: str, record: Dict) -> None:
        record = dict(record)
        record.setdefault("stored_at", time.time())
        record["checksum"] = record_checksum(record)
        with file_lock(self._lock_path()):
            data = self._read()
            data["entries"][key] = record
            self._write(data)

    def delete(self, key: str) -> bool:
        with file_lock(self._lock_path()):
            data = self._read()
            if key not in data["entries"]:
                return False
            del data["entries"][key]
            self._write(data)
            return True

    def clear(self) -> int:
        """Drop every record; returns how many were removed."""
        with file_lock(self._lock_path()):
            data = self._read()
            removed = len(data["entries"])
            data["entries"] = {}
            self._write(data)
        return removed

    def entries(self) -> Dict[str, Dict]:
        return dict(self._read()["entries"])

    def __len__(self) -> int:
        return len(self._read()["entries"])
