"""Stage 2 of the autotuner: cost-model ranking of the legal space.

Only the (width, layout, lut) axes change the generated IR — ``fuse``,
``arena`` and ``shards`` are lowering/runtime flags — so this module
generates and profiles **one IR variant per unique accessor/LUT
combination** (:func:`profile_variants`), then prices every config in
the space with
:class:`~repro.machine.costmodel.PythonRuntimeCostModel.step_time`,
passing the flags as analytic adjustments.  A 75-point space therefore
costs at most 18 codegen+pipeline+instrument runs and 75 closed-form
evaluations — cheap enough to rank everything before any measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..codegen import generate_baseline, generate_limpet_mlir
from ..frontend.model import IonicModel
from ..ir.passes import default_pipeline
from ..machine.costmodel import (PythonRuntimeCostModel, isa_for_width)
from ..machine.instrument import KernelProfile, profile_kernel
from .space import TuningConfig, Workload

#: IR-variant identity: the only axes that change generated code
VariantKey = Tuple[int, str, str]          # (width, layout, lut)


def variant_key(config: TuningConfig) -> VariantKey:
    return (config.width, config.layout, config.lut)


def generate_for(model: IonicModel, config: TuningConfig):
    """The generated kernel for one config's IR variant."""
    if config.width == 1:
        return generate_baseline(model, use_lut=config.use_lut,
                                 lut_interpolation=config.lut_interpolation)
    return generate_limpet_mlir(model, width=config.width,
                                layout=config.layout,
                                use_lut=config.use_lut,
                                lut_interpolation=config.lut_interpolation)


def profile_variants(model: IonicModel, configs: List[TuningConfig]
                     ) -> Dict[VariantKey, KernelProfile]:
    """Post-pipeline :class:`KernelProfile` per unique IR variant.

    The profile is taken *after* the default pass pipeline — the same
    module state the runtime lowers — so dead code and hoisted
    invariants do not inflate the statement counts the cost model
    prices.
    """
    profiles: Dict[VariantKey, KernelProfile] = {}
    for config in configs:
        key = variant_key(config)
        if key in profiles:
            continue
        generated = generate_for(model, config)
        default_pipeline(verify_each=False).run(generated.module,
                                                fixed_point=True)
        profiles[key] = profile_kernel(generated.module,
                                       generated.spec.function_name)
    return profiles


@dataclass
class PredictedCandidate:
    """One config with its modeled step time and rank (0 = fastest)."""

    config: TuningConfig
    predicted_seconds: float
    predicted_rank: int = -1

    def as_dict(self) -> Dict:
        return {"config": self.config.as_dict(),
                "predicted_seconds": self.predicted_seconds,
                "predicted_rank": self.predicted_rank}


def predict_ranking(model: IonicModel, workload: Workload,
                    configs: List[TuningConfig],
                    cost_model: Optional[PythonRuntimeCostModel] = None
                    ) -> List[PredictedCandidate]:
    """Rank ``configs`` by modeled step time, fastest first."""
    cost_model = cost_model or PythonRuntimeCostModel()
    profiles = profile_variants(model, configs)
    # the scalar path ignores the ISA; AVX2 stands in for width 1
    placeholder_isa = isa_for_width(4)
    ranked: List[PredictedCandidate] = []
    for config in configs:
        profile = profiles[variant_key(config)]
        isa = placeholder_isa if config.width == 1 \
            else isa_for_width(config.width)
        point = cost_model.step_time(
            profile, isa, threads=config.shards,
            n_cells=workload.n_cells, fuse=config.fuse,
            arena=config.arena)
        ranked.append(PredictedCandidate(config=config,
                                         predicted_seconds=point.seconds))
    ranked.sort(key=lambda c: c.predicted_seconds)
    for rank, candidate in enumerate(ranked):
        candidate.predicted_rank = rank
    return ranked
