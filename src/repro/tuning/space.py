"""The autotuner's configuration space and its legality rules.

A :class:`TuningConfig` fixes every codegen/runtime knob the kernel
autotuner may turn: SIMD width, state layout, LUT interpolation, fused
lowering, the buffer arena, and the shard (thread) count.
:func:`enumerate_space` produces every *legal* combination for a
model, consulting :func:`repro.codegen.legality.check_simd_legality`
plus the runtime's own constraints:

* a §5 blocker (foreign functions, unknown calls) forces the scalar
  baseline: width 1 only;
* width 1 is the scalar baseline generator: AoS layout, no vector
  statements — the arena has nothing to reuse, shards stay at 1;
* LUT interpolation choices exist only for models with LUT tables;
* the buffer arena is per-kernel scratch, so ``arena`` requires
  ``shards == 1`` (the ShardedRunner refuses it);
* SoA kernels take their slot stride from the ``end`` argument, so
  they are only valid over the whole allocation: ``shards == 1``.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional

from ..codegen.legality import check_simd_legality
from ..frontend.model import IonicModel

WIDTHS = (1, 4, 8)
LAYOUTS = ("aos", "soa", "aosoa")
LUT_MODES = ("linear", "spline", "off")


@dataclass(frozen=True)
class TuningConfig:
    """One point of the kernel configuration space."""

    width: int = 8
    layout: str = "aosoa"
    lut: str = "linear"          # "linear" | "spline" | "off"
    fuse: bool = True
    arena: bool = False
    shards: int = 1
    #: which axis multi-shard runs split: "cells" (always legal) or
    #: "instances" (population runs; bounds align to instance
    #: boundaries when the geometry allows, else cell fallback)
    shard_axis: str = "cells"

    def __post_init__(self):
        if self.width not in WIDTHS:
            raise ValueError(f"width must be one of {WIDTHS}, "
                             f"got {self.width}")
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, "
                             f"got {self.layout!r}")
        if self.lut not in LUT_MODES:
            raise ValueError(f"lut must be one of {LUT_MODES}, "
                             f"got {self.lut!r}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_axis not in ("cells", "instances"):
            raise ValueError(f"shard_axis must be 'cells' or "
                             f"'instances', got {self.shard_axis!r}")

    @property
    def use_lut(self) -> bool:
        return self.lut != "off"

    @property
    def lut_interpolation(self) -> str:
        """The generator's interpolation argument ("linear" when off —
        the generators validate the name even with ``use_lut=False``)."""
        return self.lut if self.use_lut else "linear"

    def describe(self) -> str:
        text = (f"w{self.width}/{self.layout}/lut={self.lut}/"
                f"{'fuse' if self.fuse else 'nofuse'}/"
                f"{'arena' if self.arena else 'noarena'}/"
                f"shards={self.shards}")
        if self.shard_axis != "cells":
            text += f"@{self.shard_axis}"
        return text

    def as_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TuningConfig":
        return cls(width=int(data["width"]), layout=str(data["layout"]),
                   lut=str(data["lut"]), fuse=bool(data["fuse"]),
                   arena=bool(data["arena"]), shards=int(data["shards"]),
                   shard_axis=str(data.get("shard_axis", "cells")))


@dataclass(frozen=True)
class Workload:
    """What the tuner optimizes for: one (model, run-shape, machine)."""

    model: str
    n_cells: int
    dt: float
    integrator: str = ""           # the model's integration methods
    machine: str = "python-numpy"  # executing runtime, not the paper's
    #                              # modeled Cascade Lake
    #: population-shape fingerprint ("params=GKr;n=16") — empty for
    #: ordinary single-instance workloads, so old DB records stay valid
    population: str = ""

    @classmethod
    def from_model(cls, model: IonicModel, n_cells: int, dt: float,
                   machine: str = "python-numpy",
                   population: str = "") -> "Workload":
        return cls(model=model.name, n_cells=n_cells, dt=dt,
                   integrator=integrator_summary(model), machine=machine,
                   population=population)

    def describe(self) -> str:
        text = (f"{self.model}[{self.integrator}] x {self.n_cells} cells, "
                f"dt={self.dt:g}, machine={self.machine}")
        if self.population:
            text += f", population[{self.population}]"
        return text


def integrator_summary(model: IonicModel) -> str:
    """A stable summary of the model's integration methods.

    Part of the workload identity (and the DB key): changing a state's
    integrator changes the generated update code, hence the tuning.
    """
    methods = sorted(set(str(m) for m in model.methods.values()))
    return "+".join(methods) if methods else "fe"


def default_config_for(model: IonicModel) -> TuningConfig:
    """The untuned (PR 2 default) configuration for ``model``.

    Mirrors ``KernelRunner(generate_limpet_mlir(model))``: width 8,
    AoSoA, linear LUT when the model has tables, fused lowering, no
    arena, single shard.  Foreign-function models fall back to the
    scalar baseline, exactly like ``compile_resilient``.
    """
    if model.foreign_functions:
        return TuningConfig(width=1, layout="aos",
                            lut="linear" if model.lut_tables else "off")
    return TuningConfig(width=8, layout="aosoa",
                        lut="linear" if model.lut_tables else "off")


def _lut_choices(model: IonicModel) -> Iterable[str]:
    return LUT_MODES if model.lut_tables else ("off",)


def enumerate_space(model: IonicModel,
                    shard_counts: Optional[Iterable[int]] = None,
                    population_instances: int = 0
                    ) -> List[TuningConfig]:
    """Every legal :class:`TuningConfig` for ``model``.

    ``shard_counts`` defaults to {1} plus one multi-thread point when
    the host has more than one CPU (there is no reason to enumerate a
    thread sweep the machine cannot run).

    ``population_instances`` > 1 adds instance-axis variants of every
    multi-shard point (shard over instances vs cells — the population
    layer's extra degree of freedom).
    """
    if shard_counts is None:
        cpus = os.cpu_count() or 1
        shard_counts = (1,) if cpus <= 1 else (1, min(cpus, 4))
    shard_counts = sorted(set(int(s) for s in shard_counts))
    if any(s < 1 for s in shard_counts):
        raise ValueError(f"shard counts must be >= 1, got {shard_counts}")

    vectorizable = (not model.foreign_functions
                    and check_simd_legality(model).vectorizable)
    configs: List[TuningConfig] = []
    for lut in _lut_choices(model):
        # scalar baseline: one point per LUT mode
        configs.append(TuningConfig(width=1, layout="aos", lut=lut))
        if not vectorizable:
            continue
        for width in WIDTHS:
            if width == 1:
                continue
            for layout in LAYOUTS:
                for fuse in (True, False):
                    for arena in (False, True):
                        for shards in shard_counts:
                            if arena and shards > 1:
                                continue     # arena scratch would alias
                            if layout == "soa" and shards > 1:
                                continue     # stride is the end argument
                            configs.append(TuningConfig(
                                width=width, layout=layout, lut=lut,
                                fuse=fuse, arena=arena, shards=shards))
                            if shards > 1 and population_instances > 1:
                                configs.append(TuningConfig(
                                    width=width, layout=layout, lut=lut,
                                    fuse=fuse, arena=arena,
                                    shards=shards,
                                    shard_axis="instances"))
    return configs
