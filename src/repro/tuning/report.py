"""BENCH_PR3: the tuner ablation report (tuned vs default vs worst).

Runs :func:`~repro.tuning.tuner.autotune` with ``force=True`` and
``include_worst=True`` over five representative models (two small, two
medium, one large — the paper's §4.1 size classes) and records, per
model: the tuned configuration, its measured speedup over the untuned
PR 2 default, the predicted-worst config's slowdown, and whether the
cost model's top-1 pick landed in the measured top-3.
:func:`check_tuning_report` turns the acceptance criteria into CI
assertions.
"""

from __future__ import annotations

import os
import platform
from typing import Dict, List, Optional, Sequence

from ..models import SIZE_CLASS
from .database import TuningDB
from .tuner import autotune

#: two small, two medium, one large (§4.1 classes)
REPRESENTATIVE_MODELS = ("FitzHughNagumo", "Plonsey", "LuoRudy91",
                         "Courtemanche", "OHara")

#: a tuned config may never be slower than the default beyond this
SLOWDOWN_TOLERANCE = 0.02
#: the ≥1.1x bar must hold on at least this many models
MIN_SPEEDUP = 1.1
MIN_MODELS_WITH_SPEEDUP = 3
#: cost-model top-1 must land in measured top-3 this often
MIN_TOP1_AGREEMENT = 0.8


def tuning_report(models: Sequence[str] = REPRESENTATIVE_MODELS,
                  n_cells: int = 4096, n_steps: int = 10,
                  dt: float = 0.01, top_k: int = 5, repeats: int = 5,
                  db: Optional[TuningDB] = None) -> Dict:
    """Build the BENCH_PR3 report dict (see the module docstring)."""
    db = db if db is not None else TuningDB()
    rows: List[Dict] = []
    for name in models:
        result = autotune(name, n_cells=n_cells, dt=dt, n_steps=n_steps,
                          top_k=top_k, repeats=repeats, db=db,
                          force=True, include_worst=True)
        worst = max((c for c in result.candidates
                     if c.measured_seconds is not None),
                    key=lambda c: c.measured_seconds)
        row = {
            "model": name,
            "size_class": SIZE_CLASS.get(name, "?"),
            "tuned_config": result.winner.as_dict(),
            "default_config": result.default_config.as_dict(),
            "default_seconds": result.default_seconds,
            "tuned_seconds": result.winner_seconds,
            "speedup_tuned_vs_default": result.speedup_vs_default,
            "worst_config": worst.config.as_dict(),
            "worst_seconds": worst.measured_seconds,
            "slowdown_worst_vs_default": (
                worst.measured_seconds / result.default_seconds
                if result.default_seconds else None),
            "space_size": result.space_size,
            "measurements": result.measurements,
            "top1_in_measured_top3": result.top1_in_measured_top3,
            "candidates": [c.as_dict() for c in result.candidates],
        }
        rows.append(row)
    agreements = [r["top1_in_measured_top3"] for r in rows]
    return {
        "benchmark": "BENCH_PR3",
        "config": {"models": list(models), "n_cells": n_cells,
                   "n_steps": n_steps, "dt": dt, "top_k": top_k,
                   "repeats": repeats},
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "available_cpus": os.cpu_count() or 1},
        "protocol": "interleaved steady-state (warmup, median-of-"
                    "repeats); cost-model ranking over the full legal "
                    "space, measured refinement of top-k + default + "
                    "predicted-worst",
        "models": rows,
        "summary": {
            "models_with_min_speedup": sum(
                1 for r in rows
                if (r["speedup_tuned_vs_default"] or 0) >= MIN_SPEEDUP),
            "worst_slowdown": min(
                (r["speedup_tuned_vs_default"] or 1.0) for r in rows),
            "top1_agreement": (sum(bool(a) for a in agreements)
                               / len(agreements)) if agreements else 0.0,
        },
    }


def format_tuning_table(report: Dict) -> str:
    """Render a BENCH_PR3 report dict as a table."""
    cfg = report["config"]
    lines = [
        f"BENCH_PR3 — autotuner ablation: {cfg['n_cells']} cells x "
        f"{cfg['n_steps']} steps, top-{cfg['top_k']} refinement",
        f"{'model':<18} {'class':<7} {'default':>10} {'tuned':>10} "
        f"{'speedup':>8} {'worst':>8} {'tuned config'}",
    ]
    for row in report["models"]:
        tuned = row["tuned_config"]
        desc = (f"w{tuned['width']}/{tuned['layout']}/lut={tuned['lut']}"
                f"{'' if tuned['fuse'] else '/nofuse'}"
                f"{'/arena' if tuned['arena'] else ''}"
                f"{'/x' + str(tuned['shards']) if tuned['shards'] > 1 else ''}")
        lines.append(
            f"{row['model']:<18} {row['size_class']:<7} "
            f"{row['default_seconds'] * 1e3:>8.1f}ms "
            f"{row['tuned_seconds'] * 1e3:>8.1f}ms "
            f"{row['speedup_tuned_vs_default']:>7.2f}x "
            f"{row['slowdown_worst_vs_default']:>7.2f}x {desc}")
    summary = report["summary"]
    lines.append(
        f"{summary['models_with_min_speedup']}/{len(report['models'])} "
        f"models >= {MIN_SPEEDUP}x tuned-vs-default; cost-model top-1 in "
        f"measured top-3 for {summary['top1_agreement']:.0%} of workloads")
    return "\n".join(lines)


def check_tuning_report(report: Dict) -> List[str]:
    """The acceptance criteria as CI assertions (empty list = pass)."""
    failures: List[str] = []
    rows = report["models"]
    for row in rows:
        speedup = row["speedup_tuned_vs_default"]
        if speedup is None:
            failures.append(f"{row['model']}: no measured speedup")
            continue
        if speedup < 1.0 - SLOWDOWN_TOLERANCE:
            failures.append(
                f"{row['model']}: tuned config "
                f"{1 / speedup:.3f}x SLOWER than default "
                f"(tolerance {SLOWDOWN_TOLERANCE:.0%})")
    with_speedup = report["summary"]["models_with_min_speedup"]
    if with_speedup < MIN_MODELS_WITH_SPEEDUP:
        failures.append(
            f"only {with_speedup}/{len(rows)} models reached "
            f"{MIN_SPEEDUP}x tuned-vs-default "
            f"(need {MIN_MODELS_WITH_SPEEDUP})")
    agreement = report["summary"]["top1_agreement"]
    if agreement < MIN_TOP1_AGREEMENT:
        failures.append(
            f"cost-model top-1 landed in measured top-3 for only "
            f"{agreement:.0%} of workloads (need "
            f"{MIN_TOP1_AGREEMENT:.0%})")
    return failures
