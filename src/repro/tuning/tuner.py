"""The kernel autotuner: enumerate -> rank -> measure -> persist.

:func:`autotune` is the four-stage pipeline of this package:

1. **enumerate** the legal space (:mod:`repro.tuning.space`);
2. **rank** it with the runtime-calibrated cost model fed by real IR
   profiles (:mod:`repro.tuning.costrank`);
3. **measure-refine** the top-K candidates (the untuned default is
   always force-included, so the winner can never lose to it) with the
   interleaved steady-state harness of :mod:`repro.bench.timing`;
4. **persist** the decision in the :class:`~repro.tuning.database.TuningDB`
   keyed by :func:`~repro.tuning.database.tuning_db_key`, so the next
   tune of the same workload is a pure DB hit (zero measurements).

The recorded result keeps the cost-model-predicted vs measured ranking
so tuner accuracy is reportable (BENCH_PR3 asserts the predicted top-1
lands in the measured top-3 for most workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..bench.timing import TimingStats, interleaved_steady_state
from ..frontend.model import IonicModel
from ..models import load_model
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..runtime import KernelRunner, ShardedRunner
from .costrank import PredictedCandidate, generate_for, predict_ranking
from .database import TuningDB, tuning_db_key
from .space import (TuningConfig, Workload, default_config_for,
                    enumerate_space)

#: tuner measurement defaults: small enough for construction-time use,
#: large enough that the interleaved median separates real gaps
DEFAULT_TUNE_STEPS = 20
DEFAULT_TUNE_REPEATS = 5
DEFAULT_TOP_K = 5


def build_runner(model: Union[str, IonicModel], config: TuningConfig,
                 **runner_kwargs) -> KernelRunner:
    """A runner executing ``model`` under ``config``.

    Returns a :class:`~repro.runtime.sharded.ShardedRunner` when the
    config asks for more than one shard, a plain
    :class:`~repro.runtime.executor.KernelRunner` otherwise.
    """
    if isinstance(model, str):
        model = load_model(model)
    generated = generate_for(model, config)
    if config.shards > 1:
        return ShardedRunner(generated, n_threads=config.shards,
                             fuse=config.fuse, **runner_kwargs)
    return KernelRunner(generated, fuse=config.fuse, arena=config.arena,
                        **runner_kwargs)


@dataclass
class CandidateResult:
    """One measured candidate of the refinement stage."""

    config: TuningConfig
    predicted_seconds: float
    predicted_rank: int
    measured_seconds: Optional[float] = None    # median of repeats
    measured_iqr: Optional[float] = None
    measured_rank: Optional[int] = None
    is_default: bool = False

    def as_dict(self) -> Dict:
        return {"config": self.config.as_dict(),
                "predicted_seconds": self.predicted_seconds,
                "predicted_rank": self.predicted_rank,
                "measured_seconds": self.measured_seconds,
                "measured_iqr": self.measured_iqr,
                "measured_rank": self.measured_rank,
                "is_default": self.is_default}


@dataclass
class TuningResult:
    """Outcome of one :func:`autotune` call."""

    workload: Workload
    key: str
    winner: TuningConfig
    default_config: TuningConfig
    from_db: bool = False
    measurements: int = 0               # timed samples taken (0 on DB hit)
    space_size: int = 0
    candidates: List[CandidateResult] = field(default_factory=list)
    default_seconds: Optional[float] = None
    winner_seconds: Optional[float] = None
    #: did the cost model's top-1 land in the measured top-3?
    top1_in_measured_top3: Optional[bool] = None

    @property
    def speedup_vs_default(self) -> Optional[float]:
        if not self.default_seconds or not self.winner_seconds:
            return None
        return self.default_seconds / max(self.winner_seconds, 1e-12)

    def describe(self) -> str:
        head = f"{self.workload.describe()}: {self.winner.describe()}"
        if self.from_db:
            return head + " (tuning DB hit, 0 measurements)"
        speed = self.speedup_vs_default
        tail = f", {speed:.2f}x vs default" if speed else ""
        return (f"{head} ({self.space_size}-point space, "
                f"{len(self.candidates)} measured{tail})")

    def as_dict(self) -> Dict:
        return {
            "workload": {"model": self.workload.model,
                         "n_cells": self.workload.n_cells,
                         "dt": self.workload.dt,
                         "integrator": self.workload.integrator,
                         "machine": self.workload.machine},
            "key": self.key,
            "config": self.winner.as_dict(),
            "default_config": self.default_config.as_dict(),
            "from_db": self.from_db,
            "measurements": self.measurements,
            "space_size": self.space_size,
            "candidates": [c.as_dict() for c in self.candidates],
            "default_seconds": self.default_seconds,
            "winner_seconds": self.winner_seconds,
            "speedup_vs_default": self.speedup_vs_default,
            "top1_in_measured_top3": self.top1_in_measured_top3,
        }


def _measure_candidates(model: IonicModel,
                        candidates: List[CandidateResult],
                        workload: Workload, n_steps: int,
                        repeats: int) -> int:
    """Interleaved steady-state measurement of every candidate.

    Each candidate gets a preallocated state restored from a checkpoint
    before every sample, so all samples of all candidates walk the
    identical trajectory; the summarized numbers are the runner's own
    ``elapsed_seconds`` (the stepped loop only).  Returns the number of
    timed samples taken.
    """
    samples: List[List[float]] = [[] for _ in candidates]
    fns = []
    for slot, candidate in enumerate(candidates):
        runner = build_runner(model, candidate.config)
        state = runner.make_state(workload.n_cells)
        checkpoint = state.checkpoint()

        def fn(runner=runner, state=state, checkpoint=checkpoint,
               bucket=samples[slot]):
            state.restore(checkpoint)
            result = runner.run(state, n_steps, workload.dt)
            bucket.append(result.elapsed_seconds)

        fns.append(fn)
    interleaved_steady_state(fns, warmup=1, repeats=repeats)
    taken = 0
    for candidate, bucket in zip(candidates, samples):
        stats = TimingStats(samples=bucket[1:])     # drop the warmup
        candidate.measured_seconds = stats.median
        candidate.measured_iqr = stats.iqr
        taken += len(stats.samples)
    measured_order = sorted(candidates,
                            key=lambda c: c.measured_seconds)
    for rank, candidate in enumerate(measured_order):
        candidate.measured_rank = rank
    return taken


def _pick_winner(candidates: List[CandidateResult]) -> CandidateResult:
    """Fastest measured candidate, noise-tie-broken toward the default.

    If the default's median is within the winner's noise band (the
    larger of the two IQRs), keep the default: a tuned config must beat
    it by more than the harness can be wrong about.
    """
    best = min(candidates, key=lambda c: c.measured_seconds)
    if best.is_default:
        return best
    default = next((c for c in candidates if c.is_default), None)
    if default is None:
        return best
    noise = max(best.measured_iqr or 0.0, default.measured_iqr or 0.0)
    if default.measured_seconds - best.measured_seconds <= noise:
        return default
    return best


def autotune(model: Union[str, IonicModel], n_cells: int = 512,
             dt: float = 0.01, n_steps: int = DEFAULT_TUNE_STEPS,
             top_k: int = DEFAULT_TOP_K,
             repeats: int = DEFAULT_TUNE_REPEATS,
             db: Optional[TuningDB] = None, force: bool = False,
             include_worst: bool = False,
             machine: str = "python-numpy") -> TuningResult:
    """Tune one workload; see the module docstring for the stages.

    ``force=True`` ignores (and overwrites) an existing DB record.
    ``include_worst=True`` additionally measures the cost model's
    predicted-worst config — the ablation's "worst of space" row.
    """
    if isinstance(model, str):
        model = load_model(model)
    workload = Workload.from_model(model, n_cells, dt, machine=machine)
    db = db if db is not None else TuningDB()
    key = tuning_db_key(workload)

    if not force:
        record = db.get(key)
        config = db.get_config(key)
        if config is not None:
            return TuningResult(
                workload=workload, key=key, winner=config,
                default_config=default_config_for(model),
                from_db=True, measurements=0,
                space_size=int(record.get("space_size", 0)),
                default_seconds=record.get("default_seconds"),
                winner_seconds=record.get("winner_seconds"),
                top1_in_measured_top3=record.get("top1_in_measured_top3"))

    # 1. enumerate + 2. rank
    space = enumerate_space(model)
    predicted: List[PredictedCandidate] = predict_ranking(
        model, workload, space)

    # 3. measure-refine top-K (default always included; optionally the
    #    predicted-worst for the ablation)
    default_config = default_config_for(model)
    chosen: List[PredictedCandidate] = list(predicted[:max(top_k, 1)])
    if not any(p.config == default_config for p in chosen):
        chosen.append(next(p for p in predicted
                           if p.config == default_config))
    if include_worst and not any(p.config == predicted[-1].config
                                 for p in chosen):
        chosen.append(predicted[-1])
    candidates = [CandidateResult(config=p.config,
                                  predicted_seconds=p.predicted_seconds,
                                  predicted_rank=p.predicted_rank,
                                  is_default=p.config == default_config)
                  for p in chosen]
    with _trace.span("tune", model=model.name, n_cells=n_cells, dt=dt,
                     candidates=len(candidates)):
        measurements = _measure_candidates(model, candidates, workload,
                                           n_steps, repeats)
    _metrics.counter("tuner_measurements_total",
                     "timed samples taken by the autotuner"
                     ).inc(measurements)

    # 4. pick + persist
    winner = _pick_winner(candidates)
    default = next(c for c in candidates if c.is_default)
    top1 = next(c for c in candidates if c.predicted_rank == 0)
    top1_ok = (top1.measured_rank is not None
               and top1.measured_rank <= 2)
    result = TuningResult(
        workload=workload, key=key, winner=winner.config,
        default_config=default_config, from_db=False,
        measurements=measurements, space_size=len(space),
        candidates=candidates,
        default_seconds=default.measured_seconds,
        winner_seconds=winner.measured_seconds,
        top1_in_measured_top3=top1_ok)
    db.put(key, {
        "workload": result.as_dict()["workload"],
        "config": winner.config.as_dict(),
        "space_size": len(space),
        "default_seconds": default.measured_seconds,
        "winner_seconds": winner.measured_seconds,
        "top1_in_measured_top3": top1_ok,
        "candidates": [c.as_dict() for c in candidates],
    })
    return result


def tuned_runner(model: Union[str, IonicModel], n_cells: int = 512,
                 dt: float = 0.01, db: Optional[TuningDB] = None,
                 **autotune_kwargs) -> KernelRunner:
    """Autotune (or DB-hit) a workload and return its tuned runner."""
    if isinstance(model, str):
        model = load_model(model)
    result = autotune(model, n_cells=n_cells, dt=dt, db=db,
                      **autotune_kwargs)
    return build_runner(model, result.winner)


def lookup_config(model: IonicModel, n_cells: int, dt: float,
                  db: Optional[TuningDB] = None,
                  machine: str = "python-numpy",
                  population: str = "") -> Optional[TuningConfig]:
    """The stored tuned config for a workload, or None (no tuning run).

    This is the cheap DB-only path ``KernelRunner(tune=True)`` uses at
    construction; it never measures.  ``population`` is the population
    shape fingerprint — one tune serves every sweep of that shape.
    """
    workload = Workload.from_model(model, n_cells, dt, machine=machine,
                                   population=population)
    db = db if db is not None else TuningDB()
    return db.get_config(tuning_db_key(workload))
