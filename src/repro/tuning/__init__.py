"""Cost-model-guided kernel autotuner with a persistent tuning DB.

The four-stage shape of production kernel autotuners, applied to this
repository's codegen/runtime knobs: enumerate the legal configuration
space, rank it with a cost model fed by real IR profiles, measure-refine
the top-K with the steady-state harness, and persist the decision keyed
by the same content-hash discipline as the kernel cache.  See
DESIGN.md §7.
"""

from .costrank import (PredictedCandidate, generate_for, predict_ranking,
                       profile_variants, variant_key)
from .database import (TUNE_DB_VERSION, TuningDB, default_db_path,
                       model_source_hash, tuning_db_key)
from .report import (MIN_SPEEDUP, MIN_TOP1_AGREEMENT,
                     REPRESENTATIVE_MODELS, SLOWDOWN_TOLERANCE,
                     check_tuning_report, format_tuning_table,
                     tuning_report)
from .space import (LAYOUTS, LUT_MODES, WIDTHS, TuningConfig, Workload,
                    default_config_for, enumerate_space,
                    integrator_summary)
from .tuner import (CandidateResult, TuningResult, autotune, build_runner,
                    lookup_config, tuned_runner)

__all__ = [
    "LAYOUTS", "LUT_MODES", "WIDTHS", "TuningConfig", "Workload",
    "default_config_for", "enumerate_space", "integrator_summary",
    "TUNE_DB_VERSION", "TuningDB", "default_db_path",
    "model_source_hash", "tuning_db_key",
    "PredictedCandidate", "generate_for", "predict_ranking",
    "profile_variants", "variant_key",
    "CandidateResult", "TuningResult", "autotune", "build_runner",
    "lookup_config", "tuned_runner",
    "MIN_SPEEDUP", "MIN_TOP1_AGREEMENT", "REPRESENTATIVE_MODELS",
    "SLOWDOWN_TOLERANCE", "check_tuning_report", "format_tuning_table",
    "tuning_report",
]
