"""External-format translators into EasyML (paper Figure 1).

"CellML, SBML, and MMT formats can be converted to EasyML through
semi-automatic scripts available in openCARP and Myokit" — these are
those scripts: each takes foreign source text and emits EasyML that the
regular pipeline compiles.
"""

from .cellml import CellMLError, cellml_to_easyml, parse_cellml
from .mmt import MMTError, mmt_to_easyml, parse_mmt
from .sbml import SBMLError, parse_sbml, sbml_to_easyml

__all__ = ["CellMLError", "cellml_to_easyml", "parse_cellml", "MMTError",
           "mmt_to_easyml", "parse_mmt", "SBMLError", "parse_sbml",
           "sbml_to_easyml"]
