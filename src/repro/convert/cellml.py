"""CellML -> EasyML conversion (Figure 1's left-hand side).

The paper's Figure 1 shows EasyML serving "as an intermediate
representation for different formats: CellML, SBML, and MMT formats can
be converted to EasyML through semi-automatic scripts available in
openCARP and Myokit."  This module implements that translator for the
CellML 1.x subset cardiac models actually use: components with
variables (initial values, units), MathML ``<math>`` blocks containing
``<apply>`` equations — algebraic assignments and time derivatives —
with the usual operator/function vocabulary and piecewise expressions.

Conversion maps:

* ``d x / d time = rhs``          -> ``diff_x = rhs;`` + ``x_init``
* algebraic ``x = rhs``           -> ``x = rhs;``
* constants (initial_value only)  -> ``x = value; .param();``
* the membrane potential variable -> ``Vm; .external()`` (by name or
  by the ``membrane_potential`` annotation)
* piecewise                        -> chained ternaries
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

CELLML_NS = "{http://www.cellml.org/cellml/1.0#}"
CELLML11_NS = "{http://www.cellml.org/cellml/1.1#}"
MATHML_NS = "{http://www.w3.org/1998/Math/MathML}"

#: names commonly used for the transmembrane potential in CellML models
VOLTAGE_NAMES = {"V", "Vm", "v", "membrane_potential"}
TIME_NAMES = {"time", "t", "environment_time"}

_MATHML_BINARY = {"plus": "+", "minus": "-", "times": "*", "divide": "/"}
_MATHML_RELATIONS = {"lt": "<", "leq": "<=", "gt": ">", "geq": ">=",
                     "eq": "==", "neq": "!="}
_MATHML_FUNCTIONS = {"exp": "exp", "ln": "log", "log": "log10",
                     "sin": "sin", "cos": "cos", "tan": "tan",
                     "arcsin": "asin", "arccos": "acos",
                     "arctan": "atan", "sinh": "sinh", "cosh": "cosh",
                     "tanh": "tanh", "abs": "fabs", "floor": "floor",
                     "ceiling": "ceil", "root": "sqrt"}


class CellMLError(Exception):
    """Raised on CellML content outside the supported subset."""


@dataclass
class CellMLVariable:
    name: str
    component: str
    initial_value: Optional[float] = None
    units: Optional[str] = None


@dataclass
class CellMLModel:
    """A parsed CellML document, flattened across components."""

    name: str
    variables: Dict[str, CellMLVariable] = field(default_factory=dict)
    #: algebraic equations target -> EasyML expression text
    equations: List[Tuple[str, str]] = field(default_factory=list)
    #: ODEs: state -> EasyML expression text
    odes: List[Tuple[str, str]] = field(default_factory=list)


def _local(tag: str) -> str:
    return tag.split("}", 1)[1] if "}" in tag else tag


def parse_cellml(source: str) -> CellMLModel:
    """Parse CellML XML text into a :class:`CellMLModel`."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as err:
        raise CellMLError(f"malformed XML: {err}") from err
    if _local(root.tag) != "model":
        raise CellMLError(f"expected <model>, got <{_local(root.tag)}>")
    model = CellMLModel(name=root.get("name", "cellml_model"))
    for component in root:
        if _local(component.tag) != "component":
            continue
        comp_name = component.get("name", "component")
        for child in component:
            tag = _local(child.tag)
            if tag == "variable":
                name = child.get("name")
                if not name:
                    raise CellMLError(
                        f"variable without a name in {comp_name}")
                initial = child.get("initial_value")
                model.variables[name] = CellMLVariable(
                    name=name, component=comp_name,
                    initial_value=float(initial) if initial else None,
                    units=child.get("units"))
            elif tag == "math":
                _parse_math(child, model)
    return model


def _parse_math(math: ET.Element, model: CellMLModel) -> None:
    for apply_el in math:
        if _local(apply_el.tag) != "apply":
            raise CellMLError(
                f"expected <apply> under <math>, got "
                f"<{_local(apply_el.tag)}>")
        children = list(apply_el)
        if not children or _local(children[0].tag) != "eq":
            raise CellMLError("top-level <apply> must be an equality")
        lhs, rhs = children[1], children[2]
        rhs_text = _expr(rhs)
        if _local(lhs.tag) == "apply" and \
                _local(list(lhs)[0].tag) == "diff":
            parts = list(lhs)
            bvar = parts[1]
            state = parts[2]
            bvar_name = _expr(list(bvar)[0])
            if bvar_name not in TIME_NAMES:
                raise CellMLError(
                    f"only time derivatives are supported, got "
                    f"d/d{bvar_name}")
            model.odes.append((_expr(state), rhs_text))
        elif _local(lhs.tag) == "ci":
            model.equations.append((lhs.text.strip(), rhs_text))
        else:
            raise CellMLError(
                f"unsupported equation left-hand side <{_local(lhs.tag)}>")


def _expr(node: ET.Element) -> str:
    """MathML content element -> EasyML expression text."""
    tag = _local(node.tag)
    if tag == "ci":
        return node.text.strip()
    if tag == "cn":
        value = node.text.strip()
        # cellml:units e-notation: <cn ...>1.2<sep/>-3</cn>
        sep = [c for c in node if _local(c.tag) == "sep"]
        if sep:
            exponent = sep[0].tail.strip()
            return f"{value}e{exponent}"
        return value
    if tag == "apply":
        return _apply(node)
    if tag == "piecewise":
        return _piecewise(node)
    if tag == "pi":
        return "3.141592653589793"
    if tag == "exponentiale":
        return "2.718281828459045"
    if tag == "true":
        return "1"
    if tag == "false":
        return "0"
    raise CellMLError(f"unsupported MathML element <{tag}>")


def _apply(node: ET.Element) -> str:
    children = list(node)
    op = _local(children[0].tag)
    args = children[1:]
    if op in _MATHML_BINARY:
        if op == "minus" and len(args) == 1:
            return f"(-{_expr(args[0])})"
        parts = [_expr(a) for a in args]
        return "(" + f" {_MATHML_BINARY[op]} ".join(parts) + ")"
    if op in _MATHML_RELATIONS:
        return (f"({_expr(args[0])} {_MATHML_RELATIONS[op]} "
                f"{_expr(args[1])})")
    if op == "power":
        return f"pow({_expr(args[0])}, {_expr(args[1])})"
    if op == "root":
        return f"sqrt({_expr(args[0])})"
    if op in ("and", "or"):
        joiner = " && " if op == "and" else " || "
        return "(" + joiner.join(_expr(a) for a in args) + ")"
    if op == "not":
        return f"(!{_expr(args[0])})"
    if op in _MATHML_FUNCTIONS:
        inner = ", ".join(_expr(a) for a in args)
        return f"{_MATHML_FUNCTIONS[op]}({inner})"
    raise CellMLError(f"unsupported MathML operator <{op}>")


def _piecewise(node: ET.Element) -> str:
    pieces = []
    otherwise = "0.0"
    for child in node:
        tag = _local(child.tag)
        parts = list(child)
        if tag == "piece":
            value, cond = _expr(parts[0]), _expr(parts[1])
            pieces.append((cond, value))
        elif tag == "otherwise":
            otherwise = _expr(parts[0])
    text = otherwise
    for cond, value in reversed(pieces):
        text = f"({cond} ? {value} : {text})"
    return text


def cellml_to_easyml(source: str, lookup_vm: bool = True,
                     current_name: str = "Iion") -> str:
    """Convert CellML XML text to EasyML source.

    The membrane potential becomes the external ``Vm`` (with an optional
    ``.lookup``), a variable named ``Iion``/``i_ion``/``i_tot`` becomes
    the external current output, constants become parameters, states
    keep their ODEs and initial values.
    """
    model = parse_cellml(source)
    assigned = {t for t, _ in model.equations}
    states = {s for s, _ in model.odes}
    renames: Dict[str, str] = {}
    voltage = next((v for v in model.variables if v in VOLTAGE_NAMES), None)
    if voltage:
        renames[voltage] = "Vm"
    current = next((v for v in assigned
                    if v.lower() in ("iion", "i_ion", "i_tot", "i_total")),
                   None)
    if current:
        renames[current] = current_name

    def fix(text: str) -> str:
        import re
        for old, new in renames.items():
            text = re.sub(rf"\b{re.escape(old)}\b", new, text)
        return text

    lines = [f"// Converted from CellML model {model.name!r} by"
             f" repro.convert.cellml (see Figure 1 of the paper)."]
    lookup = " .lookup(-100,100,0.05);" if lookup_vm else ""
    lines.append(f"Vm; .external(); .nodal();{lookup}")
    lines.append(f"{current_name}; .external(); .nodal();")
    lines.append("")
    for name, var in model.variables.items():
        if name in states or name in assigned or name in TIME_NAMES \
                or name in renames:
            continue
        if var.initial_value is not None:
            lines.append(f"{name} = {var.initial_value!r}; .param();")
    lines.append("")
    for name, var in model.variables.items():
        if name in states and name not in renames \
                and var.initial_value is not None:
            lines.append(f"{name}_init = {var.initial_value!r};")
    if voltage and model.variables[voltage].initial_value is not None:
        lines.append(
            f"Vm_init = {model.variables[voltage].initial_value!r};")
    lines.append("")
    for target, rhs in model.equations:
        target = renames.get(target, target)
        lines.append(f"{target} = {fix(rhs)};")
    lines.append("")
    for state, rhs in model.odes:
        if state == voltage:
            # dV/dt belongs to the solver stage: emit the current instead
            if not current:
                lines.append(f"{current_name} = -({fix(rhs)});")
            continue
        lines.append(f"diff_{state} = {fix(rhs)};")
    return "\n".join(lines) + "\n"
