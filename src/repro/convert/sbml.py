"""SBML -> EasyML conversion (Figure 1's left-hand side).

SBML (the Systems Biology Markup Language, Hucka et al. 2003) describes
models as species, parameters, rules and reactions.  The subset that
maps onto ionic-model simulation — and that this converter supports —
is:

* ``<listOfParameters>``                -> ``.param()`` declarations
* ``<listOfSpecies>`` initial amounts   -> state initial values
* ``<assignmentRule>``                  -> algebraic intermediates
* ``<rateRule>``                        -> ``diff_`` equations
* MathML expressions                    -> shared with the CellML
  converter (the same content-MathML vocabulary)

A species/parameter named ``V``/``Vm`` becomes the external membrane
potential; an assignment named ``Iion``-like becomes the external
current.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .cellml import VOLTAGE_NAMES, CellMLError, _expr, _local


class SBMLError(Exception):
    """Raised on SBML content outside the supported subset."""


@dataclass
class SBMLModel:
    name: str = "sbml_model"
    parameters: Dict[str, float] = field(default_factory=dict)
    species: Dict[str, float] = field(default_factory=dict)
    assignments: List[Tuple[str, str]] = field(default_factory=list)
    rates: List[Tuple[str, str]] = field(default_factory=list)


def parse_sbml(source: str) -> SBMLModel:
    """Parse SBML XML text into an :class:`SBMLModel`."""
    try:
        root = ET.fromstring(source)
    except ET.ParseError as err:
        raise SBMLError(f"malformed XML: {err}") from err
    if _local(root.tag) != "sbml":
        raise SBMLError(f"expected <sbml>, got <{_local(root.tag)}>")
    model_el = next((c for c in root if _local(c.tag) == "model"), None)
    if model_el is None:
        raise SBMLError("no <model> inside <sbml>")
    model = SBMLModel(name=model_el.get("id",
                                        model_el.get("name", "sbml")))
    for section in model_el:
        tag = _local(section.tag)
        if tag == "listOfParameters":
            for param in section:
                pid = param.get("id")
                value = param.get("value")
                if pid and value is not None:
                    model.parameters[pid] = float(value)
        elif tag == "listOfSpecies":
            for species in section:
                sid = species.get("id")
                amount = species.get("initialAmount",
                                     species.get("initialConcentration"))
                if sid:
                    model.species[sid] = float(amount or 0.0)
        elif tag == "listOfRules":
            for rule in section:
                rule_tag = _local(rule.tag)
                variable = rule.get("variable")
                math = next((c for c in rule if _local(c.tag) == "math"),
                            None)
                if math is None or variable is None:
                    raise SBMLError(f"rule without math/variable: "
                                    f"{rule_tag}")
                children = list(math)
                if len(children) != 1:
                    raise SBMLError("rule <math> must hold one expression")
                try:
                    text = _expr(children[0])
                except CellMLError as err:
                    raise SBMLError(str(err)) from err
                if rule_tag == "assignmentRule":
                    model.assignments.append((variable, text))
                elif rule_tag == "rateRule":
                    model.rates.append((variable, text))
                else:
                    raise SBMLError(f"unsupported rule <{rule_tag}>")
    return model


def sbml_to_easyml(source: str, lookup_vm: bool = True) -> str:
    """Convert SBML XML text to EasyML source."""
    model = parse_sbml(source)
    states = {name for name, _ in model.rates}
    voltage = next((name for name in (*model.species, *model.parameters)
                    if name in VOLTAGE_NAMES), None)
    current = next((name for name, _ in model.assignments
                    if name.lower() in ("iion", "i_ion", "i_tot")), None)
    renames: Dict[str, str] = {}
    if voltage:
        renames[voltage] = "Vm"
    if current:
        renames[current] = "Iion"

    def fix(text: str) -> str:
        for old, new in renames.items():
            text = re.sub(rf"\b{re.escape(old)}\b", new, text)
        return text

    lines = [f"// Converted from SBML model {model.name!r} by "
             f"repro.convert.sbml (see Figure 1 of the paper)."]
    lookup = " .lookup(-100,100,0.05);" if lookup_vm else ""
    lines.append(f"Vm; .external(); .nodal();{lookup}")
    lines.append("Iion; .external(); .nodal();")
    lines.append("")
    for name, value in model.parameters.items():
        if name in renames or name in states:
            continue
        lines.append(f"{name} = {value!r}; .param();")
    lines.append("")
    for name, value in model.species.items():
        target = renames.get(name, name)
        if target == "Vm":
            lines.append(f"Vm_init = {value!r};")
        elif name in states:
            lines.append(f"{name}_init = {value!r};")
    if voltage and voltage in model.parameters:
        lines.append(f"Vm_init = {model.parameters[voltage]!r};")
    lines.append("")
    for target, text in model.assignments:
        lines.append(f"{renames.get(target, target)} = {fix(text)};")
    lines.append("")
    for state, text in model.rates:
        if renames.get(state) == "Vm":
            if current is None:
                lines.append(f"Iion = -({fix(text)});")
            continue
        lines.append(f"diff_{state} = {fix(text)};")
    return "\n".join(lines) + "\n"
