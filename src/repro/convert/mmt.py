"""Myokit MMT -> EasyML conversion (Figure 1's left-hand side).

Myokit's ``.mmt`` files describe ionic models in a component-based
plain-text format the paper lists among EasyML's feeder formats.  The
supported subset covers what cardiac model exports use:

.. code-block:: text

    [[model]]
    # comments
    membrane.V = -84.0          # initial conditions block

    [membrane]
    dot(V) = -(i_ion + i_stim)
    i_ion = ina.INa + ik.IK

    [ina]
    use membrane.V as V
    GNa = 16.0
    dot(m) = alpha * (1 - m) - beta * m
        alpha = 0.32 * ...      # nested (indented) definitions
        beta = ...
    INa = GNa * m^3 * h * (V - 50)

Names are flattened ``component_variable``; ``dot(x)`` becomes
``diff_x``; ``x^y`` becomes ``pow``; ``if(c, a, b)`` becomes a ternary;
the membrane potential maps to the external ``Vm`` and the total ionic
current to ``Iion``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MMTError(Exception):
    """Raised on MMT content outside the supported subset."""


_SECTION = re.compile(r"^\[\[?(\w+)\]\]?$")
_ASSIGN = re.compile(r"^(dot\(\s*(\w+)\s*\)|\w+)\s*=\s*(.+)$")
_USE = re.compile(r"^use\s+([\w.]+)(?:\s+as\s+(\w+))?$")
_INITIAL = re.compile(r"^([\w.]+)\s*=\s*([-+0-9.eE]+)$")


@dataclass
class MMTModel:
    name: str = "mmt_model"
    #: flattened variable name -> initial value (from [[model]] block)
    initials: Dict[str, float] = field(default_factory=dict)
    #: (flattened target, is_state, rhs) in source order
    assignments: List[Tuple[str, bool, str]] = field(default_factory=list)
    #: per-component alias maps from ``use`` statements
    voltage: Optional[str] = None
    current: Optional[str] = None


def _flat(component: str, name: str) -> str:
    return f"{component}_{name}" if component else name


def parse_mmt(source: str) -> MMTModel:
    """Parse MMT text into an :class:`MMTModel`."""
    model = MMTModel()
    component: Optional[str] = None
    in_header = False
    aliases: Dict[str, str] = {}
    known_components: List[str] = []

    def resolve(text: str, local_aliases: Dict[str, str],
                comp: str) -> str:
        text = re.sub(r"\^", "**", text)

        def repl_dotted(match):
            return f"{match.group(1)}_{match.group(2)}"

        # identifiers only: '0.14' must stay a number
        text = re.sub(r"\b([A-Za-z_]\w*)\.([A-Za-z_]\w*)\b", repl_dotted,
                      text)

        def repl_name(match):
            word = match.group(0)
            if word in local_aliases:
                return local_aliases[word]
            return word
        text = re.sub(r"\b[A-Za-z_]\w*\b", repl_name, text)
        return text

    pending: List[Tuple[str, bool, str, str, Dict[str, str]]] = []
    for raw_line in source.splitlines():
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        section = _SECTION.match(line.strip())
        if section:
            name = section.group(1)
            if line.strip().startswith("[["):
                in_header = name == "model"
                component = None
            else:
                in_header = False
                component = name
                known_components.append(name)
                aliases = {}
            continue
        stripped = line.strip()
        if in_header:
            match = _INITIAL.match(stripped)
            if match:
                flat = match.group(1).replace(".", "_")
                model.initials[flat] = float(match.group(2))
            continue
        if component is None:
            raise MMTError(f"statement outside any component: {stripped}")
        use = _USE.match(stripped)
        if use:
            dotted = use.group(1).replace(".", "_")
            alias = use.group(2) or use.group(1).split(".")[-1]
            aliases[alias] = dotted
            continue
        assign = _ASSIGN.match(stripped)
        if not assign:
            raise MMTError(f"cannot parse line: {stripped!r}")
        is_state = assign.group(2) is not None
        local = assign.group(2) if is_state else assign.group(1)
        pending.append((component, is_state, local, assign.group(3),
                        dict(aliases)))

    for comp, is_state, local, rhs, local_aliases in pending:
        flat = _flat(comp, local)
        rhs_flat = resolve(rhs, local_aliases, comp)
        # names without a component prefix refer to the same component
        def qualify(match):
            word = match.group(0)
            if word in ("exp", "log", "log10", "sqrt", "pow", "fabs",
                        "abs", "sin", "cos", "tan", "tanh", "floor",
                        "ceil", "if", "and", "or", "not", "atan",
                        "asin", "acos", "min", "max", "sinh", "cosh",
                        "square", "cube", "erf"):
                return word
            if re.fullmatch(r"\d+e?\d*", word):
                return word
            if any(word.startswith(f"{c}_") or word == c
                   for c in known_components):
                return word
            return _flat(comp, word)
        rhs_flat = re.sub(r"\b[A-Za-z_]\w*\b", qualify, rhs_flat)
        rhs_flat = _convert_operators(rhs_flat)
        model.assignments.append((flat, is_state, rhs_flat))
        lowered = local.lower()
        if lowered in ("v", "vm") and comp in ("membrane", "cell"):
            model.voltage = flat
        if lowered in ("i_ion", "iion", "i_tot"):
            model.current = flat
    if model.voltage is None:
        for flat, is_state, _ in model.assignments:
            if is_state and flat.endswith("_V"):
                model.voltage = flat
                break
    return model


def _convert_operators(text: str) -> str:
    """``a ** b`` -> pow(a, b); ``if(c, a, b)`` -> ternary."""
    while "**" in text:
        match = re.search(r"([\w.]+(?:\([^()]*\))?)\s*\*\*\s*([\w.]+)",
                          text)
        if not match:
            raise MMTError(f"cannot rewrite power in {text!r}")
        text = (text[:match.start()] +
                f"pow({match.group(1)}, {match.group(2)})" +
                text[match.end():])
    # if(c, a, b) -> (c ? a : b)
    while True:
        idx = text.find("if(")
        if idx == -1:
            break
        depth, args, start, cuts = 0, [], idx + 3, []
        for pos in range(idx + 3, len(text)):
            ch = text[pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                if depth == 0:
                    cuts.append(pos)
                    break
                depth -= 1
            elif ch == "," and depth == 0:
                cuts.append(pos)
        if len(cuts) != 3:
            raise MMTError(f"malformed if(...) in {text!r}")
        c1, c2, c3 = cuts
        cond = text[start:c1].strip()
        then = text[c1 + 1:c2].strip()
        other = text[c2 + 1:c3].strip()
        text = (text[:idx] + f"(({cond}) ? ({then}) : ({other}))"
                + text[c3 + 1:])
    return text


def mmt_to_easyml(source: str, lookup_vm: bool = True) -> str:
    """Convert Myokit MMT text to EasyML source."""
    model = parse_mmt(source)
    renames: Dict[str, str] = {}
    if model.voltage:
        renames[model.voltage] = "Vm"
    if model.current:
        renames[model.current] = "Iion"

    def fix(text: str) -> str:
        for old, new in renames.items():
            text = re.sub(rf"\b{re.escape(old)}\b", new, text)
        return text

    lines = ["// Converted from Myokit MMT by repro.convert.mmt "
             "(see Figure 1 of the paper)."]
    lookup = " .lookup(-100,100,0.05);" if lookup_vm else ""
    lines.append(f"Vm; .external(); .nodal();{lookup}")
    lines.append("Iion; .external(); .nodal();")
    lines.append("")
    states = {t for t, is_state, _ in model.assignments if is_state}
    for flat, value in model.initials.items():
        name = renames.get(flat, flat)
        if name == "Vm":
            lines.append(f"Vm_init = {value!r};")
        elif flat in states:
            lines.append(f"{name}_init = {value!r};")
    lines.append("")
    emitted_iion = False
    for flat, is_state, rhs in model.assignments:
        target = renames.get(flat, flat)
        if is_state:
            if target == "Vm":
                if model.current is None:
                    lines.append(f"Iion = -({fix(rhs)});")
                    emitted_iion = True
                continue
            lines.append(f"diff_{target} = {fix(rhs)};")
        else:
            # constants become params, expressions stay intermediates
            if re.fullmatch(r"[-+0-9.eE]+", rhs.strip()):
                lines.append(f"{target} = {rhs.strip()}; .param();")
            else:
                lines.append(f"{target} = {fix(rhs)};")
            if target == "Iion":
                emitted_iion = True
    if not emitted_iion:
        raise MMTError("model defines neither i_ion nor dot(V)")
    return "\n".join(lines) + "\n"
