"""Timing protocols: the paper's trimmed mean and a steady-state harness.

Two measurement disciplines live here:

* the paper's protocol (§4) — "Execution times were measured by running
  the models five times, eliminating the two extrema, and averaging the
  remaining three" (:func:`measure`/:func:`trimmed_mean`);
* a steady-state harness (:func:`steady_state`,
  :func:`interleaved_steady_state`) for intra-process comparisons —
  warmup iterations first, then N repeats each taking the **min of
  ``inner`` back-to-back timings** (min rejects preemption noise;
  repeats capture drift), summarized as median + IQR over the repeats.
  All clocks are ``time.perf_counter`` (monotonic).  The kernel
  autotuner and ``limpet-bench perf`` both measure with this harness so
  their numbers no longer depend on ad-hoc single-shot timing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

DEFAULT_RUNS = 5
DEFAULT_TRIMMED = 3

#: steady-state defaults: enough repeats for a meaningful IQR without
#: making a 70-candidate tuning sweep take minutes
DEFAULT_WARMUP = 2
DEFAULT_REPEATS = 5
DEFAULT_INNER = 1


@dataclass
class TimingStats:
    """Summary of one steady-state measurement (seconds per repeat)."""

    samples: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def best(self) -> float:
        if not self.samples:
            raise ValueError("no samples")
        return min(self.samples)

    def _quartile(self, q: float) -> float:
        """Linear-interpolated quantile of the sorted samples."""
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def iqr(self) -> float:
        """Interquartile range: the harness's noise estimate."""
        if not self.samples:
            raise ValueError("no samples")
        return self._quartile(0.75) - self._quartile(0.25)

    def as_dict(self) -> dict:
        return {"median": self.median, "best": self.best, "iqr": self.iqr,
                "samples": list(self.samples)}


def steady_state(fn: Callable[[], object],
                 warmup: int = DEFAULT_WARMUP,
                 repeats: int = DEFAULT_REPEATS,
                 inner: int = DEFAULT_INNER) -> TimingStats:
    """Steady-state timing of ``fn``: warmup, then median-of-min repeats.

    ``warmup`` untimed calls bring caches, allocators, and (for NumPy
    kernels) ufunc dispatch into steady state.  Each of the ``repeats``
    samples is the minimum over ``inner`` back-to-back timed calls.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    stats = TimingStats()
    for _ in range(repeats):
        best = math.inf
        for _ in range(max(inner, 1)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        stats.samples.append(best)
    return stats


def interleaved_steady_state(fns: Sequence[Callable[[], object]],
                             warmup: int = DEFAULT_WARMUP,
                             repeats: int = DEFAULT_REPEATS,
                             inner: int = DEFAULT_INNER
                             ) -> List[TimingStats]:
    """Steady-state timing of several competitors, round-robin.

    Candidates being *compared* must not be timed back-to-back in
    separate blocks: thermal/frequency drift would then bias whichever
    ran first.  This variant warms every candidate up front and then
    interleaves the repeat rounds (A B C, A B C, ...), so slow drift
    hits all candidates equally.  Returns one :class:`TimingStats` per
    candidate, in order.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for fn in fns:
        for _ in range(warmup):
            fn()
    all_stats = [TimingStats() for _ in fns]
    for _ in range(repeats):
        for fn, stats in zip(fns, all_stats):
            best = math.inf
            for _ in range(max(inner, 1)):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            stats.samples.append(best)
    return all_stats


def trimmed_mean(samples: Sequence[float],
                 keep: int = DEFAULT_TRIMMED) -> float:
    """Drop extrema symmetrically until ``keep`` samples remain; average.

    With the paper's 5 runs this removes the min and the max.
    """
    if not samples:
        raise ValueError("no samples to average")
    ordered = sorted(samples)
    keep = max(1, min(keep, len(ordered)))
    drop_total = len(ordered) - keep
    drop_low = drop_total // 2
    drop_high = drop_total - drop_low
    kept = ordered[drop_low:len(ordered) - drop_high]
    return sum(kept) / len(kept)


def measure(fn: Callable[[], object], runs: int = DEFAULT_RUNS,
            keep: int = DEFAULT_TRIMMED) -> float:
    """Time ``fn`` with the paper's 5-run / drop-2-extrema protocol."""
    samples: List[float] = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return trimmed_mean(samples, keep)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups (§4)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
