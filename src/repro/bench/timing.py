"""The paper's measurement protocol (§4).

"Execution times were measured by running the models five times,
eliminating the two extrema, and averaging the remaining three."
"""

from __future__ import annotations

import math
import time
from typing import Callable, List, Sequence

DEFAULT_RUNS = 5
DEFAULT_TRIMMED = 3


def trimmed_mean(samples: Sequence[float],
                 keep: int = DEFAULT_TRIMMED) -> float:
    """Drop extrema symmetrically until ``keep`` samples remain; average.

    With the paper's 5 runs this removes the min and the max.
    """
    if not samples:
        raise ValueError("no samples to average")
    ordered = sorted(samples)
    keep = max(1, min(keep, len(ordered)))
    drop_total = len(ordered) - keep
    drop_low = drop_total // 2
    drop_high = drop_total - drop_low
    kept = ordered[drop_low:len(ordered) - drop_high]
    return sum(kept) / len(kept)


def measure(fn: Callable[[], object], runs: int = DEFAULT_RUNS,
            keep: int = DEFAULT_TRIMMED) -> float:
    """Time ``fn`` with the paper's 5-run / drop-2-extrema protocol."""
    samples: List[float] = []
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return trimmed_mean(samples, keep)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for speedups (§4)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
