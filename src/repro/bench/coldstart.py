"""Cold-start benchmark: JIT vs AOT artifact bundle (BENCH_PR8).

The whole point of ``limpet-bench build-all`` is the fleet cold start:
a fresh process — empty kernel cache, nothing warm — should reach its
first simulated step far faster reading the prebuilt bundle than
running codegen + passes + verify + lowering.  This module measures
exactly that, honestly: each measurement is a **separate child
process** (``sys.executable``) with a scratch ``$LIMPET_CACHE_DIR``,
so no in-process state can leak between the JIT and artifact runs.

* the ``jit`` child compiles from scratch (``LIMPET_ARTIFACTS=off``);
* the ``artifact`` child mounts the bundle via ``$LIMPET_ARTIFACT_DIR``
  and takes :func:`repro.aot.runner_from_store`'s spec-index path —
  no IR generation, no pipeline, no lowering.

Each child reports its time-to-first-step, a span census from the
tracer (proof the artifact path really skipped ``passes``/``verify``/
``lowering``), and a sha256 over the final state matrix (proof the
served kernel is bitwise-identical to the JIT one).

``check_coldstart_report`` encodes the PR's acceptance bar: bitwise
identity on every model, zero compile-stage spans in every artifact
child, and >= ``min_speedup`` time-to-first-step on at least
``min_models`` of the representative set.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

#: models whose pipeline cost dominates cold start (the large Markov
#: models plus the canonical mid-size ones) — the set BENCH_PR8 reports
REPRESENTATIVE = ("TomekORd", "IyerMazhariWinslow", "HeijmanRudy",
                  "OHara", "Courtemanche")

#: the measurement program run in each child process.  It reads its
#: config from $LIMPET_COLDSTART_CONFIG (a JSON object) and writes its
#: result JSON to the configured path — stdout stays free for stray
#: diagnostics.
_CHILD_SCRIPT = r"""
import hashlib, json, os, time

import numpy as np

from repro.aot import runner_from_store
from repro.codegen import generate_limpet_mlir
from repro.models import load_model
from repro.obs import trace as _trace
from repro.runtime import KernelRunner

cfg = json.loads(os.environ["LIMPET_COLDSTART_CONFIG"])
# join the parent's trace when it exported one ($LIMPET_TRACE_CONTEXT):
# same trace id, wall-clock-alignable via merge_files
ctx = _trace.TraceContext.from_env()
tracer = _trace.Tracer(
    context=ctx,
    process_name="limpet-coldstart-%s-%s" % (cfg["model"], cfg["mode"]))
_trace.activate(tracer)

t0 = time.perf_counter()
runner = None
if cfg["mode"] == "artifact":
    runner = runner_from_store(cfg["model"], backend="limpet_mlir",
                               width=cfg["width"])
artifact_hit = runner is not None
if runner is None:
    runner = KernelRunner(generate_limpet_mlir(
        load_model(cfg["model"]), width=cfg["width"]))
construct = time.perf_counter() - t0

state = runner.make_state(cfg["n_cells"])
result = runner.run(state, cfg["n_steps"], cfg["dt"])

first_step = None
if result.time_to_first_step is not None and \
        result.compile_seconds is not None:
    first_step = result.time_to_first_step - result.compile_seconds
ttfs = construct + (first_step or 0.0)

spans = {}
for event in tracer.to_chrome()["traceEvents"]:
    spans[event["name"]] = spans.get(event["name"], 0) + 1
digest = hashlib.sha256(
    np.ascontiguousarray(state.state_matrix()).tobytes()).hexdigest()

with open(cfg["result_path"], "w") as fh:
    json.dump({"model": cfg["model"], "mode": cfg["mode"],
               "construct_seconds": construct,
               "first_step_seconds": first_step,
               "time_to_first_step": ttfs,
               "compile_seconds": result.compile_seconds,
               "artifact_hit": artifact_hit,
               "spans": spans, "state_sha256": digest}, fh)

trace_dir = os.environ.get("LIMPET_TRACE")
if trace_dir:
    # one trace file per child; Tracer.merge_files stitches them with
    # the parent's (wall-clock aligned via trace_start_unix_s)
    tracer.write(os.path.join(
        trace_dir, "trace-coldstart-%s-%s-%d.json"
        % (cfg["model"], cfg["mode"], os.getpid())))
"""

#: compile-stage span names that must NOT appear in an artifact child
COMPILE_SPANS = ("passes", "verify", "lowering")


def _src_root() -> str:
    """The directory to put on the child's PYTHONPATH (repro's parent)."""
    import repro
    return str(pathlib.Path(repro.__file__).resolve().parents[1])


def _run_child(model: str, mode: str, bundle: Optional[str],
               n_cells: int, n_steps: int, dt: float, width: int,
               workdir: pathlib.Path) -> Dict:
    """One measurement process; returns its parsed result JSON."""
    cache_dir = workdir / f"cache-{model}-{mode}"
    cache_dir.mkdir(parents=True, exist_ok=True)
    result_path = workdir / f"result-{model}-{mode}.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = _src_root()
    env["LIMPET_CACHE_DIR"] = str(cache_dir)     # always a cold cache
    # propagate the parent's trace identity so the child's $LIMPET_TRACE
    # dump (if any) merges under the same trace id
    from ..obs import trace as _trace
    tracer = _trace.active_tracer()
    if tracer is not None:
        tracer.context().to_env(env)
    env["LIMPET_COLDSTART_CONFIG"] = json.dumps({
        "model": model, "mode": mode, "n_cells": n_cells,
        "n_steps": n_steps, "dt": dt, "width": width,
        "result_path": str(result_path)})
    if mode == "artifact":
        if bundle is None:
            raise ValueError("artifact child needs a bundle directory")
        env["LIMPET_ARTIFACT_DIR"] = str(bundle)
        env.pop("LIMPET_ARTIFACTS", None)
    else:
        env.pop("LIMPET_ARTIFACT_DIR", None)
        env["LIMPET_ARTIFACTS"] = "off"
    proc = subprocess.run([sys.executable, "-c", _CHILD_SCRIPT],
                          env=env, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0 or not result_path.is_file():
        raise RuntimeError(
            f"cold-start child ({model}, {mode}) failed rc="
            f"{proc.returncode}:\n{proc.stderr[-2000:]}")
    with open(result_path) as fh:
        return json.load(fh)


def coldstart_report(models: Sequence[str] = REPRESENTATIVE,
                     bundle: Optional[str] = None,
                     n_cells: int = 64, n_steps: int = 50,
                     dt: float = 0.01, width: int = 8) -> Dict:
    """Build the BENCH_PR8 report: per-model JIT vs artifact cold start.

    ``bundle`` is an existing bundle directory; when None one is built
    into a temporary directory first (its build time is reported).
    """
    from ..aot import build_bundle

    with tempfile.TemporaryDirectory(prefix="limpet-coldstart-") as tmp:
        workdir = pathlib.Path(tmp)
        build_seconds = None
        if bundle is None:
            bundle = str(workdir / "bundle")
            t0 = time.perf_counter()
            report = build_bundle(bundle, models=list(models),
                                  include_tuned=False, width=width)
            build_seconds = time.perf_counter() - t0
            failed = report.failed
            if failed:
                raise RuntimeError(
                    "bundle build failed for: " +
                    ", ".join(e.model for e in failed))
        rows: List[Dict] = []
        for model in models:
            jit = _run_child(model, "jit", None, n_cells, n_steps,
                             dt, width, workdir)
            art = _run_child(model, "artifact", bundle, n_cells,
                             n_steps, dt, width, workdir)
            speedup = (jit["time_to_first_step"]
                       / max(art["time_to_first_step"], 1e-12))
            rows.append({"model": model, "jit": jit, "artifact": art,
                         "speedup_time_to_first_step": speedup,
                         "bitwise_identical":
                         jit["state_sha256"] == art["state_sha256"]})
    return {
        "benchmark": "BENCH_PR8",
        "config": {"models": list(models), "n_cells": n_cells,
                   "n_steps": n_steps, "dt": dt, "width": width,
                   "isolation": "one child process per measurement, "
                                "scratch LIMPET_CACHE_DIR"},
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "available_cpus": os.cpu_count() or 1},
        "bundle_build_seconds": build_seconds,
        "models": rows,
    }


def format_coldstart_table(report: Dict) -> str:
    """Render a :func:`coldstart_report` dict as a text table."""
    cfg = report["config"]
    lines = [
        f"BENCH_PR8 — cold start, JIT vs AOT bundle "
        f"({cfg['n_cells']} cells x {cfg['n_steps']} steps, "
        f"width {cfg['width']}, fresh process + cold cache each)",
        f"{'model':<22} {'jit ttfs':>11} {'artifact ttfs':>14} "
        f"{'speedup':>8} {'bitwise':>8} {'0-compile':>10}",
    ]
    for row in report["models"]:
        art = row["artifact"]
        no_compile = not any(art["spans"].get(s) for s in COMPILE_SPANS)
        lines.append(
            f"{row['model']:<22} "
            f"{row['jit']['time_to_first_step'] * 1e3:>9.1f}ms "
            f"{art['time_to_first_step'] * 1e3:>12.1f}ms "
            f"{row['speedup_time_to_first_step']:>7.2f}x "
            f"{'yes' if row['bitwise_identical'] else 'NO':>8} "
            f"{'yes' if no_compile and art['artifact_hit'] else 'NO':>10}")
    if report.get("bundle_build_seconds") is not None:
        lines.append(f"bundle build: "
                     f"{report['bundle_build_seconds']:.2f}s "
                     f"({len(report['models'])} models)")
    return "\n".join(lines)


def check_coldstart_report(report: Dict, min_speedup: float = 5.0,
                           min_models: int = 3) -> List[str]:
    """The PR8 acceptance assertions; returns failures (empty = ok)."""
    failures: List[str] = []
    fast = 0
    for row in report.get("models", []):
        model = row["model"]
        art = row["artifact"]
        if not row.get("bitwise_identical"):
            failures.append(f"{model}: artifact trajectory is not "
                            f"bitwise-identical to the JIT one")
        if not art.get("artifact_hit"):
            failures.append(f"{model}: artifact child fell back to JIT "
                            f"(no bundle hit)")
        for name in COMPILE_SPANS:
            if art.get("spans", {}).get(name):
                failures.append(
                    f"{model}: artifact child ran {art['spans'][name]} "
                    f"{name!r} span(s) — cold start was not zero-compile")
        if row.get("speedup_time_to_first_step", 0.0) >= min_speedup:
            fast += 1
    if len(report.get("models", [])) < min_models:
        failures.append(f"report covers {len(report.get('models', []))} "
                        f"models; need >= {min_models}")
    elif fast < min_models:
        failures.append(
            f"only {fast} model(s) reached {min_speedup:.0f}x "
            f"time-to-first-step vs JIT; need >= {min_models}")
    return failures
