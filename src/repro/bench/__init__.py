"""Benchmark harness: measured engines + the modeled Cascade Lake bench."""

from .harness import (PAPER_CELLS, PAPER_DT, PAPER_STEPS, VARIANTS,
                      BenchConfig, MeasuredRun, ModeledBench, ModeledRun,
                      SweepRecord, format_sweep_table, generate_variant,
                      kernel_profile, resilient_sweep, run_measured)
from .coldstart import (REPRESENTATIVE, check_coldstart_report,
                        coldstart_report, format_coldstart_table)
from .perf import (CANONICAL_CELLS, CANONICAL_DT, CANONICAL_MODEL,
                   CANONICAL_STEPS, CANONICAL_WIDTH, PerfVariant,
                   check_report, check_sweep_report, combine_sweep_reports,
                   perf_report, sweep_report, write_report)
from .regress import (GateRow, extract_metrics, format_gate_table,
                      measure_current, perf_gate)
from .report import (THREAD_SWEEP, figure_isa_sweep, figure_roofline,
                     figure_scaling, figure_speedups, format_isa_sweep,
                     format_perf_table, format_scaling_table,
                     format_speedup_table, format_sweep_report,
                     sweep_average_geomean)
from .timing import (TimingStats, geomean, interleaved_steady_state,
                     measure, steady_state, trimmed_mean)

__all__ = ["PAPER_CELLS", "PAPER_DT", "PAPER_STEPS", "VARIANTS",
           "BenchConfig", "MeasuredRun", "ModeledBench", "ModeledRun",
           "SweepRecord", "format_sweep_table", "resilient_sweep",
           "generate_variant", "kernel_profile", "run_measured",
           "CANONICAL_CELLS", "CANONICAL_DT", "CANONICAL_MODEL",
           "CANONICAL_STEPS", "CANONICAL_WIDTH", "PerfVariant",
           "check_report", "check_sweep_report", "combine_sweep_reports",
           "perf_report", "sweep_report", "format_sweep_report",
           "write_report", "REPRESENTATIVE", "check_coldstart_report",
           "coldstart_report", "format_coldstart_table",
           "GateRow", "extract_metrics", "format_gate_table",
           "measure_current", "perf_gate",
           "THREAD_SWEEP", "figure_isa_sweep", "figure_roofline",
           "figure_scaling", "figure_speedups", "format_isa_sweep",
           "format_perf_table", "format_scaling_table",
           "format_speedup_table",
           "sweep_average_geomean", "geomean", "measure", "trimmed_mean",
           "TimingStats", "steady_state", "interleaved_steady_state"]
