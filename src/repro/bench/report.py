"""Figure/series generation: the rows the paper's plots are drawn from.

Each ``figure*`` function returns plain data structures plus a
``format_*`` companion that renders the same text table the benchmark
suite prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen import BackendMode
from ..machine import AVX512, ISAS, VectorISA, machine_ceilings, roofline_point
from ..models import ALL_MODELS, SIZE_CLASS
from .harness import ModeledBench, kernel_profile
from .timing import geomean

THREAD_SWEEP = (1, 2, 4, 8, 16, 32)


# ---------------------------------------------------------------------------
# Fig. 2 / Fig. 3 — per-model speedup bars
# ---------------------------------------------------------------------------


@dataclass
class SpeedupBar:
    model: str
    size_class: str
    baseline_seconds: float
    speedup: float


def figure_speedups(threads: int, isa: VectorISA = AVX512,
                    bench: Optional[ModeledBench] = None,
                    models: Sequence[str] = ALL_MODELS) -> List[SpeedupBar]:
    """Fig. 2 (threads=1) / Fig. 3 (threads=32): per-model speedups,
    ordered by baseline execution time like the paper's x-axis."""
    bench = bench or ModeledBench()
    bars = []
    for name in models:
        base = bench.seconds(name, "baseline", isa, threads)
        bars.append(SpeedupBar(model=name, size_class=SIZE_CLASS[name],
                               baseline_seconds=base,
                               speedup=bench.speedup(name, isa, threads)))
    bars.sort(key=lambda b: b.baseline_seconds)
    return bars


def format_speedup_table(bars: Sequence[SpeedupBar], title: str) -> str:
    lines = [title,
             f"{'model':<24} {'class':<7} {'baseline(s)':>12} {'speedup':>8}"]
    for bar in bars:
        lines.append(f"{bar.model:<24} {bar.size_class:<7} "
                     f"{bar.baseline_seconds:>12.1f} {bar.speedup:>7.2f}x")
    by_class: Dict[str, List[float]] = {}
    for bar in bars:
        by_class.setdefault(bar.size_class, []).append(bar.speedup)
    lines.append("")
    for cls in ("small", "medium", "large"):
        if cls in by_class:
            lines.append(f"geomean {cls:<7}: "
                         f"{geomean(by_class[cls]):.2f}x")
    lines.append(f"geomean overall: "
                 f"{geomean([b.speedup for b in bars]):.2f}x")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 4 — class-average execution time vs threads
# ---------------------------------------------------------------------------


@dataclass
class ScalingSeries:
    size_class: str
    variant: str
    threads: Tuple[int, ...]
    seconds: Tuple[float, ...]


def figure_scaling(bench: Optional[ModeledBench] = None,
                   isa: VectorISA = AVX512,
                   thread_sweep: Sequence[int] = THREAD_SWEEP
                   ) -> List[ScalingSeries]:
    """Fig. 4: average execution times of the three classes, 1..32
    threads, baseline vs limpetMLIR."""
    bench = bench or ModeledBench()
    series = []
    for cls in ("small", "medium", "large"):
        names = [n for n in ALL_MODELS if SIZE_CLASS[n] == cls]
        for variant in ("baseline", "limpet_mlir"):
            seconds = tuple(
                sum(bench.seconds(n, variant, isa, t) for n in names)
                / len(names)
                for t in thread_sweep)
            series.append(ScalingSeries(size_class=cls, variant=variant,
                                        threads=tuple(thread_sweep),
                                        seconds=seconds))
    return series


def format_scaling_table(series: Sequence[ScalingSeries]) -> str:
    threads = series[0].threads
    lines = ["Fig. 4 — average execution time (s) per class vs threads "
             "(AVX-512)",
             f"{'class':<8} {'variant':<12} "
             + " ".join(f"{t:>9}T" for t in threads)]
    for entry in series:
        lines.append(f"{entry.size_class:<8} {entry.variant:<12} "
                     + " ".join(f"{s:>10.2f}" for s in entry.seconds))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 5 — geomean speedup per ISA x threads
# ---------------------------------------------------------------------------


@dataclass
class ISASweepRow:
    isa: str
    threads: Tuple[int, ...]
    geomean_speedup: Tuple[float, ...]


def figure_isa_sweep(bench: Optional[ModeledBench] = None,
                     thread_sweep: Sequence[int] = THREAD_SWEEP,
                     models: Sequence[str] = ALL_MODELS) -> List[ISASweepRow]:
    """Fig. 5: geomean speedups for SSE/AVX2/AVX-512 across threads."""
    bench = bench or ModeledBench()
    rows = []
    for isa in ISAS.values():
        values = tuple(
            geomean([bench.speedup(n, isa, t) for n in models])
            for t in thread_sweep)
        rows.append(ISASweepRow(isa=isa.name, threads=tuple(thread_sweep),
                                geomean_speedup=values))
    return rows


def format_isa_sweep(rows: Sequence[ISASweepRow]) -> str:
    threads = rows[0].threads
    lines = ["Fig. 5 — geomean speedup per vector ISA vs threads",
             f"{'isa':<8} " + " ".join(f"{t:>7}T" for t in threads)]
    for row in rows:
        lines.append(f"{row.isa:<8} "
                     + " ".join(f"{v:>7.2f}x" for v in row.geomean_speedup))
    overall = geomean([v for row in rows for v in row.geomean_speedup])
    lines.append(f"overall geomean (all ISAs, all thread counts): "
                 f"{overall:.2f}x   (paper: 2.90x)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 6 — roofline
# ---------------------------------------------------------------------------


def figure_roofline(n_cells: int = 8192, threads: int = 32,
                    models: Sequence[str] = ALL_MODELS):
    """Fig. 6: every model placed on the (F/B, GFlops/s) plane."""
    points = []
    for name in models:
        profile = kernel_profile(name, "limpet_mlir", AVX512.width)
        points.append(roofline_point(name, profile, n_cells=n_cells,
                                     threads=threads,
                                     size_class=SIZE_CLASS[name]))
    return points, machine_ceilings()


# ---------------------------------------------------------------------------
# BENCH_PR2 — measured performance-layer comparison
# ---------------------------------------------------------------------------


def format_perf_table(report: Dict) -> str:
    """Render a :func:`repro.bench.perf.perf_report` dict as a table.

    Throughput columns come from the runner's
    :class:`~repro.runtime.executor.RunResult` units
    (``steps_per_second`` / ``cell_steps_per_second``).
    """
    cfg = report["config"]
    machine = report.get("machine", {})
    speedups = report["speedups_vs_baseline"]
    lines = [
        f"BENCH_PR2 — {cfg['model']}: {cfg['n_cells']} cells x "
        f"{cfg['n_steps']} steps, dt={cfg['dt']}, "
        f"{cfg['threads']} threads "
        f"({machine.get('available_cpus', '?')} cpus available)",
        f"{'variant':<14} {'construct':>11} {'ttfs':>11} {'run':>11} "
        f"{'compute':>11} {'overhead':>11} {'total':>11} "
        f"{'Mcell-steps/s':>14} {'speedup':>8}",
    ]
    for v in report["variants"]:
        total = v["construct_seconds"] + v["run_seconds"]
        compute = v.get("compute_seconds")
        overhead = v.get("overhead_seconds")
        ttfs = v.get("time_to_first_step")
        compute_text = (f"{compute * 1e3:>9.1f}ms" if compute is not None
                        else f"{'-':>11}")
        overhead_text = (f"{overhead * 1e3:>9.1f}ms" if overhead is not None
                         else f"{'-':>11}")
        ttfs_text = (f"{ttfs * 1e3:>9.1f}ms" if ttfs is not None
                     else f"{'-':>11}")
        # a population axis multiplies throughput: make it visible
        name = v["name"]
        if v.get("instances", 1) > 1:
            name += f"[x{v['instances']}]"
        if v.get("artifact_hit"):
            name += "*"     # construction served by the AOT bundle
        lines.append(
            f"{name:<14} {v['construct_seconds'] * 1e3:>9.1f}ms "
            f"{ttfs_text} "
            f"{v['run_seconds'] * 1e3:>9.1f}ms "
            f"{compute_text} {overhead_text} {total * 1e3:>9.1f}ms "
            f"{v['cell_steps_per_second'] / 1e6:>14.2f} "
            f"{speedups[v['name']]['total']:>7.2f}x")
    extra = speedups.get("sharded", {}).get("vs_fused_run")
    if extra is not None:
        lines.append(f"sharded vs fused (run only): {extra:.2f}x "
                     f"at {cfg['threads']} threads")
    return "\n".join(lines)


def format_sweep_report(report: Dict) -> str:
    """Render a :func:`repro.bench.perf.sweep_report` dict as a table.

    Accepts a single-model report or a combined ``models`` document.
    """
    if "models" in report:
        return "\n\n".join(format_sweep_report(entry)
                           for entry in report["models"])
    cfg = report["config"]
    params = ", ".join(f"{k}={v}" for k, v in cfg["params"].items())
    lines = [
        f"BENCH_PR7 — {cfg['model']} sweep {params}: "
        f"{cfg['instances']} instances x {cfg['cells_per_instance']} "
        f"cells x {cfg['n_steps']} steps, dt={cfg['dt']}, single thread",
        f"{'variant':<14} {'run':>11} {'iqr':>9} "
        f"{'Mcell-steps/s':>14} {'instances':>10}",
    ]
    for v in report["variants"]:
        lines.append(
            f"{v['name']:<14} {v['run_seconds'] * 1e3:>9.1f}ms "
            f"{v['run_seconds_iqr'] * 1e3:>7.1f}ms "
            f"{v['cell_steps_per_second'] / 1e6:>14.2f} "
            f"{v.get('instances', 1):>10}")
    lines.append(f"batched vs loop-of-{cfg['instances']}: "
                 f"{report['speedup_batched_vs_loop']:.2f}x")
    reuse = report.get("compile_reuse", {})
    lines.append(f"compile reuse (same shape): first build "
                 f"{'hit' if reuse.get('first_build_cache_hit') else 'miss'}"
                 f", second build "
                 f"{'hit' if reuse.get('second_build_cache_hit') else 'miss'}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §4.4 / §5 — sweep statistics
# ---------------------------------------------------------------------------


def sweep_average_geomean(variant: str,
                          bench: Optional[ModeledBench] = None,
                          isa: VectorISA = AVX512,
                          thread_sweep: Sequence[int] = THREAD_SWEEP,
                          models: Sequence[str] = ALL_MODELS) -> float:
    """The paper's '1 to 32 thread AVX-512 configuration' statistic:
    the mean over thread counts of the per-thread-count geomeans."""
    bench = bench or ModeledBench()
    values = [geomean([bench.speedup(n, isa, t, variant) for n in models])
              for t in thread_sweep]
    return sum(values) / len(values)
