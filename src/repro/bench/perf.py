"""Measured before/after comparison for the PR2 performance layer.

Times five variants of the same simulation on the same machine:

* ``baseline``       — unfused lowering, no cache (the pre-PR hot path);
* ``fused``          — fused expression lowering;
* ``fused_cached``   — fused lowering built from a warm persistent
  kernel cache (construction skips passes/verify/lowering);
* ``fused_artifact`` — fused lowering served by the read-only AOT
  artifact tier (:mod:`repro.aot`): construction skips passes, verify
  and lowering, reading the prebuilt bundle entry instead;
* ``sharded``        — fused lowering executed by a
  :class:`~repro.runtime.sharded.ShardedRunner` on N threads.

Each variant reports construction time (pipeline + verify + lowering,
or a cache hit) and run time (the paper's 5-run drop-extrema protocol)
separately, because the cache helps the former and fusion/sharding the
latter.  Speedups compare **total** time — a sweep over many models
pays both — plus a run-only column for the compute-stage story.

``perf_report`` additionally differential-checks every variant's
trajectory against the baseline before timing anything: a performance
number for a kernel that diverges is worthless.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..codegen import generate_limpet_mlir
from ..models import load_model
from ..runtime import (KernelCache, KernelRunner, ShardedRunner,
                       compare_trajectories)
from .timing import TimingStats, steady_state

#: the canonical benchmark config (CI and README numbers use these).
#: OHara is the paper's flagship Markov/backward-Euler model and the
#: one where per-op vector temporaries hurt the most.
CANONICAL_MODEL = "OHara"
CANONICAL_CELLS = 4096
CANONICAL_STEPS = 100
CANONICAL_DT = 0.01
CANONICAL_WIDTH = 8


@dataclass
class PerfVariant:
    """One timed variant of the benchmark config."""

    name: str
    construct_seconds: float
    run_seconds: float
    steps_per_second: float
    cell_steps_per_second: float
    cache_hit: bool = False
    threads: int = 1
    run_seconds_iqr: float = 0.0
    compute_seconds: Optional[float] = None
    overhead_seconds: Optional[float] = None
    #: population batch instances advanced per kernel call (1 for
    #: ordinary variants; ``cell_steps_per_second`` includes it)
    instances: int = 1
    #: did construction hit the AOT artifact tier?
    artifact_hit: bool = False
    #: compile + first-step latency of this variant's *first* run —
    #: the cold-vs-warm-vs-artifact column of the standard report
    time_to_first_step: Optional[float] = None
    #: one-time kernel construction cost inside the runner (a subset
    #: of ``construct_seconds``, which also covers codegen)
    compile_seconds: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        return self.construct_seconds + self.run_seconds

    def as_dict(self) -> Dict:
        data = asdict(self)
        data["total_seconds"] = self.total_seconds
        return data


def _timed_construct(factory):
    """(runner, seconds) for one runner construction."""
    import time
    start = time.perf_counter()
    runner = factory()
    return runner, time.perf_counter() - start


def _timed_run(runner, n_cells: int, n_steps: int, dt: float,
               runs: int = 5) -> PerfVariant:
    """Time ``runner`` with the steady-state harness (median + IQR).

    Each sample runs a fresh state (so every sample walks the same
    trajectory); allocation happens outside the timed region — the
    summarized samples are the runner's own ``elapsed_seconds``, which
    cover only the stepped loop.  After timing, one extra
    ``time_breakdown`` run attributes the median to kernel vs overhead
    (the breakdown's clock reads perturb timing, so it never feeds the
    headline number).
    """
    samples: list = []
    first_result: list = []

    def sample():
        state = runner.make_state(n_cells)
        result = runner.run(state, n_steps, dt)
        if not samples:
            first_result.append(result)
        samples.append(result.elapsed_seconds)

    steady_state(sample, warmup=1, repeats=runs)
    stats = TimingStats(samples=samples[1:])    # untimed warmup dropped
    seconds = stats.median
    breakdown = runner.run(runner.make_state(n_cells), n_steps, dt,
                           time_breakdown=True)
    first = first_result[0] if first_result else None
    return PerfVariant(
        name="", construct_seconds=0.0, run_seconds=seconds,
        steps_per_second=n_steps / max(seconds, 1e-12),
        cell_steps_per_second=n_steps * n_cells / max(seconds, 1e-12),
        run_seconds_iqr=stats.iqr,
        compute_seconds=breakdown.compute_seconds,
        overhead_seconds=breakdown.overhead_seconds,
        time_to_first_step=getattr(first, "time_to_first_step", None),
        compile_seconds=getattr(first, "compile_seconds", None))


def perf_report(model_name: str = CANONICAL_MODEL,
                n_cells: int = CANONICAL_CELLS,
                n_steps: int = CANONICAL_STEPS,
                dt: float = CANONICAL_DT,
                threads: int = 4,
                cache: Optional[KernelCache] = None,
                runs: int = 5,
                check_steps: int = 40,
                check_cells: int = 16,
                width: int = CANONICAL_WIDTH) -> Dict:
    """Build the BENCH_PR2 report dict for one model/config.

    ``cache`` defaults to the process default cache; pass a dedicated
    :class:`KernelCache` to keep benchmark entries out of it.
    ``width`` is the SIMD width of the generated kernels (the CLI's
    ``--width`` override; the canonical config uses 8).
    """
    model = load_model(model_name)

    def gen():
        return generate_limpet_mlir(load_model(model_name), width=width)

    # -- differential gate: all variants must agree before we time anything
    ref = KernelRunner(gen(), fuse=False).simulate(check_cells, check_steps,
                                                   dt).state
    fused_state = KernelRunner(gen()).simulate(check_cells, check_steps,
                                               dt).state
    with ShardedRunner(gen(), n_threads=threads) as sharded_check:
        sharded_state = sharded_check.simulate(check_cells, check_steps,
                                               dt).state
    for label, state in (("fused", fused_state), ("sharded", sharded_state)):
        verdict = compare_trajectories(ref, state)
        if not verdict:
            raise AssertionError(
                f"{label} lowering diverged from unfused baseline on "
                f"{model_name}: {verdict.describe()}")

    # -- baseline: unfused, uncached
    runner, construct = _timed_construct(
        lambda: KernelRunner(gen(), fuse=False))
    baseline = _timed_run(runner, n_cells, n_steps, dt, runs)
    baseline.name = "baseline"
    baseline.construct_seconds = construct

    # -- fused
    runner, construct = _timed_construct(lambda: KernelRunner(gen()))
    fused = _timed_run(runner, n_cells, n_steps, dt, runs)
    fused.name = "fused"
    fused.construct_seconds = construct

    # -- fused + warm persistent cache
    the_cache = cache if cache is not None else True
    KernelRunner(gen(), cache=the_cache)          # warm the entry
    runner, construct = _timed_construct(
        lambda: KernelRunner(gen(), cache=the_cache))
    fused_cached = _timed_run(runner, n_cells, n_steps, dt, runs)
    fused_cached.name = "fused_cached"
    fused_cached.construct_seconds = construct
    fused_cached.cache_hit = runner.cache_hit

    # -- fused + AOT artifact bundle (zero-compile construction)
    import tempfile

    from ..aot import ArtifactStore, build_bundle
    with tempfile.TemporaryDirectory() as tmp:
        build_bundle(tmp, models=[model_name], include_tuned=False,
                     width=width)
        store = ArtifactStore(tmp)
        art_check = KernelRunner(gen(), cache=None, artifacts=store)
        art_state = art_check.simulate(check_cells, check_steps, dt).state
        verdict = compare_trajectories(ref, art_state)
        if not verdict:
            raise AssertionError(
                f"fused_artifact lowering diverged from unfused baseline "
                f"on {model_name}: {verdict.describe()}")
        runner, construct = _timed_construct(
            lambda: KernelRunner(gen(), cache=None, artifacts=store))
        fused_artifact = _timed_run(runner, n_cells, n_steps, dt, runs)
        fused_artifact.name = "fused_artifact"
        fused_artifact.construct_seconds = construct
        fused_artifact.artifact_hit = runner.artifact_hit

    # -- sharded (fused, N threads)
    runner, construct = _timed_construct(
        lambda: ShardedRunner(gen(), n_threads=threads))
    try:
        sharded = _timed_run(runner, n_cells, n_steps, dt, runs)
    finally:
        runner.close()
    sharded.name = "sharded"
    sharded.construct_seconds = construct
    sharded.threads = threads

    variants = [baseline, fused, fused_cached, fused_artifact, sharded]
    base_total = baseline.total_seconds
    base_run = baseline.run_seconds
    speedups = {
        v.name: {"total": base_total / max(v.total_seconds, 1e-12),
                 "run": base_run / max(v.run_seconds, 1e-12)}
        for v in variants}
    speedups["sharded"]["vs_fused_run"] = (
        fused.run_seconds / max(sharded.run_seconds, 1e-12))
    return {
        "benchmark": "BENCH_PR2",
        "config": {"model": model_name, "n_cells": n_cells,
                   "n_steps": n_steps, "dt": dt, "threads": threads,
                   "runs": runs, "width": width,
                   "n_states": len(model.states)},
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "available_cpus": os.cpu_count() or 1},
        "differential": "all variants match unfused baseline "
                        "(NaN-strict compare_trajectories)",
        "variants": [v.as_dict() for v in variants],
        "speedups_vs_baseline": speedups,
    }


def sweep_report(model_name: str, params: Dict[str, str],
                 cells_per_instance: int = 256,
                 n_steps: int = 50, dt: float = CANONICAL_DT,
                 runs: int = 5, width: int = CANONICAL_WIDTH,
                 absolute: bool = False,
                 check_steps: int = 40) -> Dict:
    """Batched-sweep vs loop-of-N benchmark (the BENCH_PR7 numbers).

    Times the same N-instance parameter sweep two ways with the *same*
    promoted kernel, warm and single-threaded:

    * ``loop``    — N sequential single-instance runs (the pre-PR
      shape: one ``KernelRunner`` run per parameter point);
    * ``batched`` — one :class:`~repro.population.PopulationRunner`
      run over the flattened (instance × cell) axis.

    A bitwise differential gate precedes the timing — every instance
    of the batched run must equal its single-instance twin exactly —
    and the report carries a compile-reuse proof (the second runner of
    the same population shape hits the kernel cache).
    """
    import numpy as np

    from ..population import PopulationRunner, PopulationSpec, \
        load_promoted_model

    names = tuple(dict.fromkeys(params))
    promoted = load_promoted_model(model_name, names)
    spec = PopulationSpec.from_ranges(promoted, params, absolute=absolute)
    n = spec.n_instances
    pop = PopulationRunner(promoted, spec, width=width)
    runner = pop.runner_for(cells_per_instance)

    def loop_states():
        return [runner.make_state(
            cells_per_instance,
            param_values={name: float(vals[i])
                          for name, vals in spec.values.items()})
            for i in range(n)]

    # -- bitwise differential gate ------------------------------------------------
    check = pop.simulate(cells_per_instance, check_steps, dt)
    for i, state in enumerate(loop_states()):
        runner.run(state, check_steps, dt)
        if not np.array_equal(check.instance_state_matrix(i),
                              state.state_matrix()):
            raise AssertionError(
                f"batched instance {i} of {model_name} diverged bitwise "
                f"from its single-instance run")

    # -- timed: loop of N single-instance runs (warm kernel) ----------------------
    loop_samples: list = []

    def loop_sample():
        elapsed = 0.0
        for state in loop_states():
            elapsed += runner.run(state, n_steps, dt).elapsed_seconds
        loop_samples.append(elapsed)

    steady_state(loop_sample, warmup=1, repeats=runs)
    loop_stats = TimingStats(samples=loop_samples[1:])
    loop = PerfVariant(
        name="loop", construct_seconds=0.0,
        run_seconds=loop_stats.median,
        steps_per_second=n_steps / max(loop_stats.median, 1e-12),
        cell_steps_per_second=(n_steps * n * cells_per_instance
                               / max(loop_stats.median, 1e-12)),
        run_seconds_iqr=loop_stats.iqr, instances=1)

    # -- timed: one batched run over all instances --------------------------------
    batched_samples: list = []

    def batched_sample():
        state = pop.make_state(cells_per_instance)
        batched_samples.append(
            pop.run(state, n_steps, dt).elapsed_seconds)

    steady_state(batched_sample, warmup=1, repeats=runs)
    batched_stats = TimingStats(samples=batched_samples[1:])
    batched = PerfVariant(
        name="batched", construct_seconds=0.0,
        run_seconds=batched_stats.median,
        steps_per_second=n_steps / max(batched_stats.median, 1e-12),
        cell_steps_per_second=(n_steps * n * cells_per_instance
                               / max(batched_stats.median, 1e-12)),
        run_seconds_iqr=batched_stats.iqr, instances=n)

    # -- compile reuse: same shape -> kernel-cache hit ----------------------------
    from ..runtime import KernelCache
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        reuse_cache = KernelCache(tmp)
        first = PopulationRunner(promoted, spec, width=width,
                                 cache=reuse_cache)
        first.runner_for(cells_per_instance)
        cold_hit = first.cache_hit
        second = PopulationRunner(promoted, spec, width=width,
                                  cache=reuse_cache)
        second.runner_for(cells_per_instance)
        warm_hit = second.cache_hit
        first.close()
        second.close()
    pop.close()

    speedup = loop.run_seconds / max(batched.run_seconds, 1e-12)
    return {
        "benchmark": "BENCH_PR7",
        "config": {"model": model_name, "params": dict(params),
                   "absolute": absolute, "instances": n,
                   "cells_per_instance": cells_per_instance,
                   "n_steps": n_steps, "dt": dt, "runs": runs,
                   "width": width, "threads": 1},
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "available_cpus": os.cpu_count() or 1},
        "differential": "every batched instance bitwise-equals its "
                        "single-instance run (np.array_equal)",
        "variants": [loop.as_dict(), batched.as_dict()],
        "speedup_batched_vs_loop": speedup,
        "compile_reuse": {"first_build_cache_hit": cold_hit,
                          "second_build_cache_hit": warm_hit},
    }


def check_sweep_report(report: Dict,
                       min_speedup: float = 1.5) -> List[str]:
    """CI assertions for one sweep report (or a combined ``models``
    report): returns a list of failures (empty = ok)."""
    if "models" in report:
        failures: List[str] = []
        for entry in report["models"]:
            failures += check_sweep_report(entry, min_speedup)
        return failures
    failures = []
    model = report["config"]["model"]
    speedup = report.get("speedup_batched_vs_loop", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"{model}: batched sweep only {speedup:.3f}x vs loop "
            f"(need >= {min_speedup}x)")
    reuse = report.get("compile_reuse", {})
    if reuse.get("first_build_cache_hit"):
        failures.append(f"{model}: first build of the shape claimed a "
                        f"cache hit (cache was supposed to be cold)")
    if not reuse.get("second_build_cache_hit"):
        failures.append(f"{model}: second build of the same population "
                        f"shape missed the kernel cache")
    variants = {v["name"]: v for v in report.get("variants", [])}
    batched = variants.get("batched")
    if batched is not None and \
            batched["instances"] != report["config"]["instances"]:
        failures.append(f"{model}: batched variant reports "
                        f"{batched['instances']} instances, config says "
                        f"{report['config']['instances']}")
    return failures


def combine_sweep_reports(reports: List[Dict]) -> Dict:
    """Merge per-model sweep reports into one BENCH_PR7 document."""
    machine = reports[0]["machine"] if reports else {}
    return {"benchmark": "BENCH_PR7", "machine": machine,
            "models": reports}


def write_report(report: Dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def check_report(report: Dict) -> List[str]:
    """Sanity assertions for CI: returns a list of failures (empty=ok).

    Thresholds are deliberately loose — CI machines are noisy — but a
    fused kernel slower than the unfused one, or a cache-hit build
    slower than a full pipeline build, indicates a real regression.
    """
    failures = []
    speedups = report["speedups_vs_baseline"]
    variants = {v["name"]: v for v in report["variants"]}
    if speedups["fused"]["run"] < 1.0:
        failures.append(
            f"fused run slower than unfused baseline: "
            f"{speedups['fused']['run']:.3f}x")
    if not variants["fused_cached"]["cache_hit"]:
        failures.append("fused_cached variant did not hit the cache")
    if variants["fused_cached"]["construct_seconds"] >= \
            variants["baseline"]["construct_seconds"]:
        failures.append(
            "cache-hit construction not faster than full pipeline "
            f"({variants['fused_cached']['construct_seconds']:.4f}s vs "
            f"{variants['baseline']['construct_seconds']:.4f}s)")
    artifact = variants.get("fused_artifact")   # pre-PR8 reports lack it
    if artifact is not None:
        if not artifact["artifact_hit"]:
            failures.append("fused_artifact variant did not hit the "
                            "AOT artifact tier")
        if artifact["construct_seconds"] >= \
                variants["baseline"]["construct_seconds"]:
            failures.append(
                "artifact-tier construction not faster than full "
                f"pipeline ({artifact['construct_seconds']:.4f}s vs "
                f"{variants['baseline']['construct_seconds']:.4f}s)")
    # Thread scaling needs parallel hardware: on a single-CPU machine
    # extra shards can only add overhead, so only assert it when the
    # box can actually run shards concurrently.
    cpus = report["machine"].get("available_cpus", 1)
    threads = report["config"]["threads"]
    if cpus >= 2 and threads >= 2 and \
            speedups["sharded"]["vs_fused_run"] <= 1.0:
        failures.append(
            f"sharded ({threads}T on {cpus} cpus) not faster than "
            f"single-thread fused: "
            f"{speedups['sharded']['vs_fused_run']:.3f}x")
    return failures
