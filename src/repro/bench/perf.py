"""Measured before/after comparison for the PR2 performance layer.

Times four variants of the same simulation on the same machine:

* ``baseline``     — unfused lowering, no cache (the pre-PR hot path);
* ``fused``        — fused expression lowering;
* ``fused_cached`` — fused lowering built from a warm persistent
  kernel cache (construction skips passes/verify/lowering);
* ``sharded``      — fused lowering executed by a
  :class:`~repro.runtime.sharded.ShardedRunner` on N threads.

Each variant reports construction time (pipeline + verify + lowering,
or a cache hit) and run time (the paper's 5-run drop-extrema protocol)
separately, because the cache helps the former and fusion/sharding the
latter.  Speedups compare **total** time — a sweep over many models
pays both — plus a run-only column for the compute-stage story.

``perf_report`` additionally differential-checks every variant's
trajectory against the baseline before timing anything: a performance
number for a kernel that diverges is worthless.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..codegen import generate_limpet_mlir
from ..models import load_model
from ..runtime import (KernelCache, KernelRunner, ShardedRunner,
                       compare_trajectories)
from .timing import TimingStats, steady_state

#: the canonical benchmark config (CI and README numbers use these).
#: OHara is the paper's flagship Markov/backward-Euler model and the
#: one where per-op vector temporaries hurt the most.
CANONICAL_MODEL = "OHara"
CANONICAL_CELLS = 4096
CANONICAL_STEPS = 100
CANONICAL_DT = 0.01
CANONICAL_WIDTH = 8


@dataclass
class PerfVariant:
    """One timed variant of the benchmark config."""

    name: str
    construct_seconds: float
    run_seconds: float
    steps_per_second: float
    cell_steps_per_second: float
    cache_hit: bool = False
    threads: int = 1
    run_seconds_iqr: float = 0.0
    compute_seconds: Optional[float] = None
    overhead_seconds: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        return self.construct_seconds + self.run_seconds

    def as_dict(self) -> Dict:
        data = asdict(self)
        data["total_seconds"] = self.total_seconds
        return data


def _timed_construct(factory):
    """(runner, seconds) for one runner construction."""
    import time
    start = time.perf_counter()
    runner = factory()
    return runner, time.perf_counter() - start


def _timed_run(runner, n_cells: int, n_steps: int, dt: float,
               runs: int = 5) -> PerfVariant:
    """Time ``runner`` with the steady-state harness (median + IQR).

    Each sample runs a fresh state (so every sample walks the same
    trajectory); allocation happens outside the timed region — the
    summarized samples are the runner's own ``elapsed_seconds``, which
    cover only the stepped loop.  After timing, one extra
    ``time_breakdown`` run attributes the median to kernel vs overhead
    (the breakdown's clock reads perturb timing, so it never feeds the
    headline number).
    """
    samples: list = []

    def sample():
        state = runner.make_state(n_cells)
        samples.append(runner.run(state, n_steps, dt).elapsed_seconds)

    steady_state(sample, warmup=1, repeats=runs)
    stats = TimingStats(samples=samples[1:])    # untimed warmup dropped
    seconds = stats.median
    breakdown = runner.run(runner.make_state(n_cells), n_steps, dt,
                           time_breakdown=True)
    return PerfVariant(
        name="", construct_seconds=0.0, run_seconds=seconds,
        steps_per_second=n_steps / max(seconds, 1e-12),
        cell_steps_per_second=n_steps * n_cells / max(seconds, 1e-12),
        run_seconds_iqr=stats.iqr,
        compute_seconds=breakdown.compute_seconds,
        overhead_seconds=breakdown.overhead_seconds)


def perf_report(model_name: str = CANONICAL_MODEL,
                n_cells: int = CANONICAL_CELLS,
                n_steps: int = CANONICAL_STEPS,
                dt: float = CANONICAL_DT,
                threads: int = 4,
                cache: Optional[KernelCache] = None,
                runs: int = 5,
                check_steps: int = 40,
                check_cells: int = 16,
                width: int = CANONICAL_WIDTH) -> Dict:
    """Build the BENCH_PR2 report dict for one model/config.

    ``cache`` defaults to the process default cache; pass a dedicated
    :class:`KernelCache` to keep benchmark entries out of it.
    ``width`` is the SIMD width of the generated kernels (the CLI's
    ``--width`` override; the canonical config uses 8).
    """
    model = load_model(model_name)

    def gen():
        return generate_limpet_mlir(load_model(model_name), width=width)

    # -- differential gate: all variants must agree before we time anything
    ref = KernelRunner(gen(), fuse=False).simulate(check_cells, check_steps,
                                                   dt).state
    fused_state = KernelRunner(gen()).simulate(check_cells, check_steps,
                                               dt).state
    with ShardedRunner(gen(), n_threads=threads) as sharded_check:
        sharded_state = sharded_check.simulate(check_cells, check_steps,
                                               dt).state
    for label, state in (("fused", fused_state), ("sharded", sharded_state)):
        verdict = compare_trajectories(ref, state)
        if not verdict:
            raise AssertionError(
                f"{label} lowering diverged from unfused baseline on "
                f"{model_name}: {verdict.describe()}")

    # -- baseline: unfused, uncached
    runner, construct = _timed_construct(
        lambda: KernelRunner(gen(), fuse=False))
    baseline = _timed_run(runner, n_cells, n_steps, dt, runs)
    baseline.name = "baseline"
    baseline.construct_seconds = construct

    # -- fused
    runner, construct = _timed_construct(lambda: KernelRunner(gen()))
    fused = _timed_run(runner, n_cells, n_steps, dt, runs)
    fused.name = "fused"
    fused.construct_seconds = construct

    # -- fused + warm persistent cache
    the_cache = cache if cache is not None else True
    KernelRunner(gen(), cache=the_cache)          # warm the entry
    runner, construct = _timed_construct(
        lambda: KernelRunner(gen(), cache=the_cache))
    fused_cached = _timed_run(runner, n_cells, n_steps, dt, runs)
    fused_cached.name = "fused_cached"
    fused_cached.construct_seconds = construct
    fused_cached.cache_hit = runner.cache_hit

    # -- sharded (fused, N threads)
    runner, construct = _timed_construct(
        lambda: ShardedRunner(gen(), n_threads=threads))
    try:
        sharded = _timed_run(runner, n_cells, n_steps, dt, runs)
    finally:
        runner.close()
    sharded.name = "sharded"
    sharded.construct_seconds = construct
    sharded.threads = threads

    variants = [baseline, fused, fused_cached, sharded]
    base_total = baseline.total_seconds
    base_run = baseline.run_seconds
    speedups = {
        v.name: {"total": base_total / max(v.total_seconds, 1e-12),
                 "run": base_run / max(v.run_seconds, 1e-12)}
        for v in variants}
    speedups["sharded"]["vs_fused_run"] = (
        fused.run_seconds / max(sharded.run_seconds, 1e-12))
    return {
        "benchmark": "BENCH_PR2",
        "config": {"model": model_name, "n_cells": n_cells,
                   "n_steps": n_steps, "dt": dt, "threads": threads,
                   "runs": runs, "width": width,
                   "n_states": len(model.states)},
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "available_cpus": os.cpu_count() or 1},
        "differential": "all variants match unfused baseline "
                        "(NaN-strict compare_trajectories)",
        "variants": [v.as_dict() for v in variants],
        "speedups_vs_baseline": speedups,
    }


def write_report(report: Dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def check_report(report: Dict) -> List[str]:
    """Sanity assertions for CI: returns a list of failures (empty=ok).

    Thresholds are deliberately loose — CI machines are noisy — but a
    fused kernel slower than the unfused one, or a cache-hit build
    slower than a full pipeline build, indicates a real regression.
    """
    failures = []
    speedups = report["speedups_vs_baseline"]
    variants = {v["name"]: v for v in report["variants"]}
    if speedups["fused"]["run"] < 1.0:
        failures.append(
            f"fused run slower than unfused baseline: "
            f"{speedups['fused']['run']:.3f}x")
    if not variants["fused_cached"]["cache_hit"]:
        failures.append("fused_cached variant did not hit the cache")
    if variants["fused_cached"]["construct_seconds"] >= \
            variants["baseline"]["construct_seconds"]:
        failures.append(
            "cache-hit construction not faster than full pipeline "
            f"({variants['fused_cached']['construct_seconds']:.4f}s vs "
            f"{variants['baseline']['construct_seconds']:.4f}s)")
    # Thread scaling needs parallel hardware: on a single-CPU machine
    # extra shards can only add overhead, so only assert it when the
    # box can actually run shards concurrently.
    cpus = report["machine"].get("available_cpus", 1)
    threads = report["config"]["threads"]
    if cpus >= 2 and threads >= 2 and \
            speedups["sharded"]["vs_fused_run"] <= 1.0:
        failures.append(
            f"sharded ({threads}T on {cpus} cpus) not faster than "
            f"single-thread fused: "
            f"{speedups['sharded']['vs_fused_run']:.3f}x")
    return failures
