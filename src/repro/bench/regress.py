"""Perf-regression gate: current measurements vs a committed BENCH file.

The repo's BENCH_*.json trajectory (PR2 variants, PR7 population
sweeps, PR8 cold starts) records what the machine that produced them
could do.  ``limpet-bench perf --baseline BENCH_PR8.json`` re-measures
the same configuration **today** and fails (non-zero exit) when a
tracked metric regressed beyond ``--tolerance`` — the observe-then-
calibrate loop the paper applies to its generated kernels, turned on
the reproduction itself and wired into CI.

Two classes of metric, gated differently:

* **ratio** metrics (speedups: artifact-vs-JIT time-to-first-step,
  fused-vs-baseline run time, batched-vs-loop sweeps) are dimension-
  less and survive a machine change — always gated;
* **absolute** metrics (steps_per_second, seconds of
  time_to_first_step) only mean something on the machine that recorded
  the baseline — gated when ``platform.platform()`` matches the
  baseline's ``machine.platform``, reported as *skipped* otherwise
  (CI runners differ from the committed-baseline machine).

A regression is ``current < baseline * (1 - tolerance)`` for
higher-is-better metrics and ``current > baseline * (1 + tolerance)``
for lower-is-better ones.  ``slowdown`` synthetically degrades every
current metric by the given factor — the self-test proving the gate
actually trips (``perf --baseline ... --inject-slowdown 4``).
"""

from __future__ import annotations

import json
import pathlib
import platform
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["GateRow", "extract_metrics", "measure_current",
           "compare_metrics", "perf_gate", "format_gate_table"]

#: benchmark schemas the gate can re-measure
SUPPORTED = ("BENCH_PR2", "BENCH_PR7", "BENCH_PR8")


@dataclass
class GateRow:
    """One gated metric: baseline vs current and the verdict."""

    name: str
    baseline: float
    current: Optional[float]
    higher_better: bool
    absolute: bool
    status: str                 # "ok" | "regression" | "skipped" | "missing"
    ratio: Optional[float] = None   # current / baseline

    @property
    def failed(self) -> bool:
        return self.status == "regression"


def _metric(out: List[Dict], name: str, value, higher_better: bool,
            absolute: bool) -> None:
    if isinstance(value, (int, float)) and value > 0:
        out.append({"name": name, "value": float(value),
                    "higher_better": higher_better,
                    "absolute": absolute})


def extract_metrics(report: Dict) -> List[Dict]:
    """The gated metrics of one BENCH report, schema-dispatched.

    Each entry: ``{name, value, higher_better, absolute}``.
    """
    bench = report.get("benchmark")
    out: List[Dict] = []
    if bench == "BENCH_PR2":
        for name, ratios in report.get("speedups_vs_baseline",
                                       {}).items():
            if name == "baseline":
                continue
            for kind in ("run", "total"):
                _metric(out, f"speedup.{name}.{kind}",
                        ratios.get(kind), True, False)
        for variant in report.get("variants", []):
            _metric(out, f"{variant.get('name')}.steps_per_second",
                    variant.get("steps_per_second"), True, True)
    elif bench == "BENCH_PR7":
        entries = report.get("models")
        if entries is None:         # a single-model sweep report
            entries = [report]
        for entry in entries:
            model = entry.get("config", {}).get("model", "?")
            _metric(out, f"{model}.speedup_batched_vs_loop",
                    entry.get("speedup_batched_vs_loop"), True, False)
            for variant in entry.get("variants", []):
                _metric(out,
                        f"{model}.{variant.get('name')}"
                        f".steps_per_second",
                        variant.get("steps_per_second"), True, True)
    elif bench == "BENCH_PR8":
        for row in report.get("models", []):
            model = row.get("model", "?")
            _metric(out, f"{model}.speedup_time_to_first_step",
                    row.get("speedup_time_to_first_step"), True, False)
            for mode in ("jit", "artifact"):
                child = row.get(mode) or {}
                _metric(out, f"{model}.{mode}.time_to_first_step",
                        child.get("time_to_first_step"), False, True)
    else:
        raise ValueError(
            f"cannot gate benchmark {bench!r}; supported: "
            f"{', '.join(SUPPORTED)}")
    return out


def _best_of_coldstart(reports: List[Dict]) -> Dict:
    """Fold repeated BENCH_PR8 runs into per-model best (min ttfs per
    mode, speedup recomputed) — cold-start children are noisy and the
    gate should compare capability, not scheduler luck."""
    best = reports[0]
    if len(reports) == 1:
        return best
    by_model: Dict[str, Dict] = {row["model"]: dict(row)
                                 for row in best.get("models", [])}
    for report in reports[1:]:
        for row in report.get("models", []):
            seen = by_model.setdefault(row["model"], dict(row))
            for mode in ("jit", "artifact"):
                if row[mode]["time_to_first_step"] < \
                        seen[mode]["time_to_first_step"]:
                    seen[mode] = row[mode]
    for row in by_model.values():
        row["speedup_time_to_first_step"] = (
            row["jit"]["time_to_first_step"]
            / max(row["artifact"]["time_to_first_step"], 1e-12))
    folded = dict(best)
    folded["models"] = list(by_model.values())
    return folded


def measure_current(baseline: Dict, repeats: int = 2,
                    runs: Optional[int] = None) -> Dict:
    """Re-run the baseline's benchmark with the baseline's config.

    Returns a report in the same schema, measured on this machine now.
    ``repeats`` applies to BENCH_PR8 (best-of-N children); ``runs``
    overrides the per-variant timing runs of BENCH_PR2/PR7.
    """
    bench = baseline.get("benchmark")
    config = baseline.get("config", {})
    if bench == "BENCH_PR2":
        from .perf import perf_report
        return perf_report(
            model_name=config.get("model", "OHara"),
            n_cells=config.get("n_cells", 4096),
            n_steps=config.get("n_steps", 100),
            dt=config.get("dt", 0.01),
            threads=config.get("threads", 4),
            runs=runs or config.get("runs", 5),
            width=config.get("width", 8))
    if bench == "BENCH_PR7":
        from .perf import combine_sweep_reports, sweep_report
        entries = baseline.get("models")
        if entries is None:
            entries = [baseline]
        reports = []
        for entry in entries:
            cfg = entry.get("config", {})
            reports.append(sweep_report(
                cfg.get("model", "LuoRudy91"),
                params=cfg.get("params", {}),
                cells_per_instance=cfg.get("cells_per_instance", 128),
                n_steps=cfg.get("n_steps", 50),
                dt=cfg.get("dt", 0.01),
                runs=runs or cfg.get("runs", 5),
                width=cfg.get("width", 8)))
        return combine_sweep_reports(reports)
    if bench == "BENCH_PR8":
        from .coldstart import coldstart_report
        reports = [coldstart_report(
            models=config.get("models") or None,
            n_cells=config.get("n_cells", 64),
            n_steps=config.get("n_steps", 50),
            dt=config.get("dt", 0.01),
            width=config.get("width", 8))
            for _ in range(max(1, repeats))]
        return _best_of_coldstart(reports)
    raise ValueError(
        f"cannot re-measure benchmark {bench!r}; supported: "
        f"{', '.join(SUPPORTED)}")


def compare_metrics(baseline: List[Dict], current: List[Dict],
                    tolerance: float,
                    gate_absolute: bool) -> List[GateRow]:
    """Pair metrics by name and apply the tolerance."""
    current_by_name = {m["name"]: m for m in current}
    rows: List[GateRow] = []
    for base in baseline:
        name = base["name"]
        cur = current_by_name.get(name)
        if cur is None:
            rows.append(GateRow(name=name, baseline=base["value"],
                                current=None,
                                higher_better=base["higher_better"],
                                absolute=base["absolute"],
                                status="missing"))
            continue
        ratio = cur["value"] / base["value"]
        if base["absolute"] and not gate_absolute:
            status = "skipped"
        elif base["higher_better"]:
            status = "regression" \
                if cur["value"] < base["value"] * (1 - tolerance) \
                else "ok"
        else:
            status = "regression" \
                if cur["value"] > base["value"] * (1 + tolerance) \
                else "ok"
        rows.append(GateRow(name=name, baseline=base["value"],
                            current=cur["value"],
                            higher_better=base["higher_better"],
                            absolute=base["absolute"],
                            status=status, ratio=ratio))
    return rows


def _inject_slowdown(metrics: List[Dict], factor: float) -> List[Dict]:
    """Degrade every metric by ``factor`` (the gate's self-test)."""
    out = []
    for m in metrics:
        m = dict(m)
        m["value"] = m["value"] / factor if m["higher_better"] \
            else m["value"] * factor
        out.append(m)
    return out


def perf_gate(baseline_path, tolerance: float = 0.15,
              slowdown: Optional[float] = None, repeats: int = 2,
              runs: Optional[int] = None,
              measure: Optional[Callable[[Dict], Dict]] = None
              ) -> Tuple[List[GateRow], List[str], Dict]:
    """The full gate: load baseline, re-measure, compare.

    Returns ``(rows, failures, current_report)`` — ``failures`` is the
    list of human-readable regression lines (empty = gate passes).
    ``measure`` overrides the re-measurement (tests inject cheap
    fakes); ``slowdown`` synthetically degrades the current metrics.
    """
    baseline_path = pathlib.Path(baseline_path)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    if measure is not None:
        current = measure(baseline)
    else:
        current = measure_current(baseline, repeats=repeats, runs=runs)
    base_metrics = extract_metrics(baseline)
    cur_metrics = extract_metrics(current)
    if slowdown:
        cur_metrics = _inject_slowdown(cur_metrics, slowdown)
    base_platform = baseline.get("machine", {}).get("platform")
    gate_absolute = (base_platform is not None
                     and base_platform == platform.platform())
    rows = compare_metrics(base_metrics, cur_metrics, tolerance,
                           gate_absolute)
    failures = []
    for row in rows:
        if row.failed:
            direction = "↓" if row.higher_better else "↑"
            failures.append(
                f"{row.name}: {row.baseline:g} -> {row.current:g} "
                f"({direction} {abs(1 - row.ratio) * 100:.1f}% beyond "
                f"the {tolerance * 100:.0f}% tolerance)")
    return rows, failures, current


def format_gate_table(rows: List[GateRow], tolerance: float,
                      baseline_name: str = "baseline") -> str:
    lines = [
        f"perf gate vs {baseline_name} (tolerance "
        f"{tolerance * 100:.0f}%; absolute metrics "
        f"{'gated' if any(r.absolute and r.status != 'skipped' for r in rows) else 'skipped: different machine'})",
        f"{'metric':<44} {'baseline':>12} {'current':>12} "
        f"{'ratio':>7}  status",
    ]
    for row in rows:
        cur = f"{row.current:g}" if row.current is not None else "-"
        ratio = f"{row.ratio:.3f}" if row.ratio is not None else "-"
        mark = {"ok": "ok", "regression": "REGRESSION",
                "skipped": "skipped", "missing": "MISSING"}[row.status]
        lines.append(f"{row.name:<44} {row.baseline:>12g} {cur:>12} "
                     f"{ratio:>7}  {mark}")
    n_fail = sum(r.failed for r in rows)
    n_ok = sum(r.status == "ok" for r in rows)
    n_skip = sum(r.status == "skipped" for r in rows)
    lines.append(f"{n_ok} ok, {n_fail} regression(s), "
                 f"{n_skip} skipped")
    return "\n".join(lines)
