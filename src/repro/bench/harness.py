"""The bench-binary analog: build, run and model every configuration.

openCARP ships a ``bench`` executable that runs a 100,000-step
simulation of one ionic model over a mesh of cells (§4).  This module
is its equivalent entry point, in two modes:

* **measured** — wall-clock of the two real execution engines
  (scalar-interpreted baseline vs NumPy-vectorized limpetMLIR kernels),
  at a laptop-friendly scale;
* **modeled** — the calibrated Cascade Lake cost model evaluated on the
  kernels' actual IR at the paper's scale (8192 cells, 100k steps, 1–32
  threads, SSE/AVX2/AVX-512), which regenerates every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..codegen import (BackendMode, GeneratedKernel, generate_baseline,
                       generate_icc_simd, generate_limpet_mlir)
from ..frontend import IonicModel
from ..ir.passes import default_pipeline
from ..machine import (AVX512, CostModel, KernelProfile, VectorISA,
                       profile_kernel)
from ..models import SIZE_CLASS, load_model
from ..runtime import KernelRunner, Stimulus
from .timing import measure

#: the paper's bench defaults (§4): 100k steps of 0.01 ms over 8192 cells
PAPER_CELLS = 8192
PAPER_STEPS = 100_000
PAPER_DT = 0.01

#: backend variants the evaluation exercises
VARIANTS = ("baseline", "limpet_mlir", "limpet_mlir_aos", "icc_simd",
            "limpet_mlir_nolut", "baseline_nolut")


@dataclass(frozen=True)
class BenchConfig:
    """One bench invocation's parameters."""

    n_cells: int = PAPER_CELLS
    n_steps: int = PAPER_STEPS
    dt: float = PAPER_DT
    stimulus_amplitude: float = -20.0
    stimulus_period: float = 400.0
    perturbation: float = 0.005

    def stimulus_for(self, model: IonicModel) -> Stimulus:
        amplitude = self.stimulus_amplitude
        # normalized-voltage models (resting near 0) get a small pulse
        if abs(model.external_init.get("Vm", 0.0)) < 5.0:
            amplitude = -0.3
        return Stimulus(amplitude=amplitude, duration=1.0,
                        period=self.stimulus_period)


def generate_variant(model: IonicModel, variant: str,
                     width: int = 8) -> GeneratedKernel:
    """Build one backend variant's kernel for ``model``."""
    if variant == "baseline":
        return generate_baseline(model)
    if variant == "baseline_nolut":
        return generate_baseline(model, use_lut=False)
    if variant == "limpet_mlir":
        return generate_limpet_mlir(model, width)
    if variant == "limpet_mlir_aos":
        return generate_limpet_mlir(model, width, data_layout_opt=False)
    if variant == "limpet_mlir_nolut":
        return generate_limpet_mlir(model, width, use_lut=False)
    if variant == "icc_simd":
        return generate_icc_simd(model, width)
    raise ValueError(f"unknown variant {variant!r}; one of {VARIANTS}")


@lru_cache(maxsize=512)
def _cached_profile(model_name: str, variant: str,
                    width: int) -> KernelProfile:
    model = load_model(model_name)
    kernel = generate_variant(model, variant, width)
    default_pipeline(verify_each=False).run(kernel.module, fixed_point=True)
    return profile_kernel(kernel.module, kernel.spec.function_name)


@lru_cache(maxsize=256)
def _cached_runner(model_name: str, variant: str, width: int) -> KernelRunner:
    model = load_model(model_name)
    return KernelRunner(generate_variant(model, variant, width))


def kernel_profile(model_name: str, variant: str = "limpet_mlir",
                   width: int = 8) -> KernelProfile:
    """The optimized kernel's instruction profile (cached)."""
    return _cached_profile(model_name, variant, width)


_VARIANT_MODE = {
    "baseline": BackendMode.BASELINE,
    "baseline_nolut": BackendMode.BASELINE,
    "limpet_mlir": BackendMode.LIMPET_MLIR,
    "limpet_mlir_aos": BackendMode.LIMPET_MLIR,
    "limpet_mlir_nolut": BackendMode.LIMPET_MLIR,
    "icc_simd": BackendMode.ICC_SIMD,
}


@dataclass
class ModeledRun:
    """Cost-model evaluation of one (model, variant, isa, threads) point."""

    model: str
    variant: str
    isa: str
    threads: int
    seconds: float
    size_class: str


class ModeledBench:
    """Evaluates the full suite on the modeled Cascade Lake testbed."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 n_cells: int = PAPER_CELLS, n_steps: int = PAPER_STEPS):
        self.cost = cost_model or CostModel()
        self.n_cells = n_cells
        self.n_steps = n_steps

    def seconds(self, model_name: str, variant: str = "limpet_mlir",
                isa: VectorISA = AVX512, threads: int = 1) -> float:
        width = 1 if variant.startswith("baseline") else isa.width
        profile = kernel_profile(model_name, variant, width)
        return self.cost.total_time(profile, isa, threads, self.n_cells,
                                    self.n_steps, _VARIANT_MODE[variant])

    def run(self, model_name: str, variant: str = "limpet_mlir",
            isa: VectorISA = AVX512, threads: int = 1) -> ModeledRun:
        return ModeledRun(model=model_name, variant=variant, isa=isa.name,
                          threads=threads,
                          seconds=self.seconds(model_name, variant, isa,
                                               threads),
                          size_class=SIZE_CLASS[model_name])

    def speedup(self, model_name: str, isa: VectorISA = AVX512,
                threads: int = 1, variant: str = "limpet_mlir") -> float:
        """baseline time / variant time at the same point (Fig. 2/3)."""
        return (self.seconds(model_name, "baseline", isa, threads)
                / self.seconds(model_name, variant, isa, threads))


@dataclass
class MeasuredRun:
    """Wall-clock of one real-engine execution."""

    model: str
    variant: str
    width: int
    n_cells: int
    n_steps: int
    seconds: float


def run_measured(model_name: str, variant: str = "limpet_mlir",
                 width: int = 8, n_cells: int = 512, n_steps: int = 50,
                 dt: float = PAPER_DT, runs: int = 5,
                 config: Optional[BenchConfig] = None) -> MeasuredRun:
    """Time a real execution with the paper's 5-run protocol.

    Scales are smaller than the paper's (the baseline engine is an
    interpreter); speedup *ratios* between variants are the meaningful
    output.
    """
    runner = _cached_runner(model_name, variant, width)
    config = config or BenchConfig(n_cells=n_cells, n_steps=n_steps, dt=dt)
    stimulus = config.stimulus_for(runner.model)

    def one_run():
        runner.simulate(n_cells, n_steps, dt, stimulus,
                        perturbation=config.perturbation)

    seconds = measure(one_run, runs=runs)
    return MeasuredRun(model=model_name, variant=variant, width=width,
                       n_cells=n_cells, n_steps=n_steps, seconds=seconds)
