"""The bench-binary analog: build, run and model every configuration.

openCARP ships a ``bench`` executable that runs a 100,000-step
simulation of one ionic model over a mesh of cells (§4).  This module
is its equivalent entry point, in two modes:

* **measured** — wall-clock of the two real execution engines
  (scalar-interpreted baseline vs NumPy-vectorized limpetMLIR kernels),
  at a laptop-friendly scale;
* **modeled** — the calibrated Cascade Lake cost model evaluated on the
  kernels' actual IR at the paper's scale (8192 cells, 100k steps, 1–32
  threads, SSE/AVX2/AVX-512), which regenerates every figure.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, List, Optional, Sequence

from ..codegen import (BackendMode, GeneratedKernel, generate_baseline,
                       generate_icc_simd, generate_limpet_mlir)
from ..frontend import IonicModel
from ..ir.passes import default_pipeline
from ..machine import (AVX512, CostModel, KernelProfile, VectorISA,
                       profile_kernel)
from ..models import SIZE_CLASS, all_model_files, load_model
from ..resilience import (Diagnostic, HealthReport,
                          NumericalDivergenceError, Severity,
                          WatchdogConfig, compile_resilient)
from ..runtime import KernelRunner, Stimulus
from .timing import measure

#: the paper's bench defaults (§4): 100k steps of 0.01 ms over 8192 cells
PAPER_CELLS = 8192
PAPER_STEPS = 100_000
PAPER_DT = 0.01

#: backend variants the evaluation exercises
VARIANTS = ("baseline", "limpet_mlir", "limpet_mlir_aos", "icc_simd",
            "limpet_mlir_nolut", "baseline_nolut")


@dataclass(frozen=True)
class BenchConfig:
    """One bench invocation's parameters."""

    n_cells: int = PAPER_CELLS
    n_steps: int = PAPER_STEPS
    dt: float = PAPER_DT
    stimulus_amplitude: float = -20.0
    stimulus_period: float = 400.0
    perturbation: float = 0.005

    def stimulus_for(self, model: IonicModel) -> Stimulus:
        amplitude = self.stimulus_amplitude
        # normalized-voltage models (resting near 0) get a small pulse
        if abs(model.external_init.get("Vm", 0.0)) < 5.0:
            amplitude = -0.3
        return Stimulus(amplitude=amplitude, duration=1.0,
                        period=self.stimulus_period)


def generate_variant(model: IonicModel, variant: str,
                     width: int = 8) -> GeneratedKernel:
    """Build one backend variant's kernel for ``model``."""
    if variant == "baseline":
        return generate_baseline(model)
    if variant == "baseline_nolut":
        return generate_baseline(model, use_lut=False)
    if variant == "limpet_mlir":
        return generate_limpet_mlir(model, width)
    if variant == "limpet_mlir_aos":
        return generate_limpet_mlir(model, width, data_layout_opt=False)
    if variant == "limpet_mlir_nolut":
        return generate_limpet_mlir(model, width, use_lut=False)
    if variant == "icc_simd":
        return generate_icc_simd(model, width)
    raise ValueError(f"unknown variant {variant!r}; one of {VARIANTS}")


@lru_cache(maxsize=512)
def _cached_profile(model_name: str, variant: str,
                    width: int) -> KernelProfile:
    model = load_model(model_name)
    kernel = generate_variant(model, variant, width)
    default_pipeline(verify_each=False).run(kernel.module, fixed_point=True)
    return profile_kernel(kernel.module, kernel.spec.function_name)


@lru_cache(maxsize=256)
def _cached_runner(model_name: str, variant: str, width: int) -> KernelRunner:
    model = load_model(model_name)
    return KernelRunner(generate_variant(model, variant, width))


def kernel_profile(model_name: str, variant: str = "limpet_mlir",
                   width: int = 8) -> KernelProfile:
    """The optimized kernel's instruction profile (cached)."""
    return _cached_profile(model_name, variant, width)


_VARIANT_MODE = {
    "baseline": BackendMode.BASELINE,
    "baseline_nolut": BackendMode.BASELINE,
    "limpet_mlir": BackendMode.LIMPET_MLIR,
    "limpet_mlir_aos": BackendMode.LIMPET_MLIR,
    "limpet_mlir_nolut": BackendMode.LIMPET_MLIR,
    "icc_simd": BackendMode.ICC_SIMD,
}


@dataclass
class ModeledRun:
    """Cost-model evaluation of one (model, variant, isa, threads) point."""

    model: str
    variant: str
    isa: str
    threads: int
    seconds: float
    size_class: str


class ModeledBench:
    """Evaluates the full suite on the modeled Cascade Lake testbed."""

    def __init__(self, cost_model: Optional[CostModel] = None,
                 n_cells: int = PAPER_CELLS, n_steps: int = PAPER_STEPS):
        self.cost = cost_model or CostModel()
        self.n_cells = n_cells
        self.n_steps = n_steps

    def seconds(self, model_name: str, variant: str = "limpet_mlir",
                isa: VectorISA = AVX512, threads: int = 1) -> float:
        width = 1 if variant.startswith("baseline") else isa.width
        profile = kernel_profile(model_name, variant, width)
        return self.cost.total_time(profile, isa, threads, self.n_cells,
                                    self.n_steps, _VARIANT_MODE[variant])

    def run(self, model_name: str, variant: str = "limpet_mlir",
            isa: VectorISA = AVX512, threads: int = 1) -> ModeledRun:
        return ModeledRun(model=model_name, variant=variant, isa=isa.name,
                          threads=threads,
                          seconds=self.seconds(model_name, variant, isa,
                                               threads),
                          size_class=SIZE_CLASS[model_name])

    def speedup(self, model_name: str, isa: VectorISA = AVX512,
                threads: int = 1, variant: str = "limpet_mlir") -> float:
        """baseline time / variant time at the same point (Fig. 2/3)."""
        return (self.seconds(model_name, "baseline", isa, threads)
                / self.seconds(model_name, variant, isa, threads))


@dataclass
class MeasuredRun:
    """Wall-clock of one real-engine execution."""

    model: str
    variant: str
    width: int
    n_cells: int
    n_steps: int
    seconds: float


def run_measured(model_name: str, variant: str = "limpet_mlir",
                 width: int = 8, n_cells: int = 512, n_steps: int = 50,
                 dt: float = PAPER_DT, runs: int = 5,
                 config: Optional[BenchConfig] = None) -> MeasuredRun:
    """Time a real execution with the paper's 5-run protocol.

    Scales are smaller than the paper's (the baseline engine is an
    interpreter); speedup *ratios* between variants are the meaningful
    output.
    """
    runner = _cached_runner(model_name, variant, width)
    config = config or BenchConfig(n_cells=n_cells, n_steps=n_steps, dt=dt)
    stimulus = config.stimulus_for(runner.model)

    def one_run():
        runner.simulate(n_cells, n_steps, dt, stimulus,
                        perturbation=config.perturbation)

    seconds = measure(one_run, runs=runs)
    return MeasuredRun(model=model_name, variant=variant, width=width,
                       n_cells=n_cells, n_steps=n_steps, seconds=seconds)


# ---------------------------------------------------------------------------
# Resilient sweep: the figure-run workhorse that survives bad models
# ---------------------------------------------------------------------------


@dataclass
class SweepRecord:
    """Per-model outcome of a resilient sweep (never an exception)."""

    model: str
    ok: bool
    backend: Optional[str] = None       # tier that compiled (None = none)
    fell_back: bool = False
    seconds: Optional[float] = None
    health: Optional[HealthReport] = None
    #: execution tier the run finished on (None = plain runner;
    #: "supervised"/"threads"/"single" when workers were requested)
    tier: Optional[str] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def status(self) -> str:
        if not self.ok:
            return "FAILED"
        if self.health is not None and self.health.retries:
            return "recovered"
        return "fell_back" if self.fell_back else "ok"


def resilient_sweep(model_names: Optional[Sequence[str]] = None,
                    width: int = 8, n_cells: int = 32, n_steps: int = 40,
                    dt: float = PAPER_DT,
                    watchdog: Optional[WatchdogConfig] = None,
                    strict: bool = False,
                    reproducer_dir: Optional[pathlib.Path] = None,
                    inject_factory: Optional[Callable[[str], object]] = None,
                    workers: int = 0, supervision=None
                    ) -> List[SweepRecord]:
    """Run every model through the resilient compile-and-run pipeline.

    This is what keeps a full figure sweep alive: each model compiles
    down the backend fallback chain (sandboxed passes, quarantine,
    reproducers) and runs under the numerical watchdog; any failure is
    captured as a :class:`SweepRecord` with diagnostics instead of
    aborting the sweep.  ``inject_factory(model_name)`` may return a
    :class:`~repro.resilience.FaultInjector` per model (fault drills).

    ``workers > 1`` executes each model on the supervised multiprocess
    tier (:class:`~repro.runtime.supervised.SupervisedRunner`,
    configured by ``supervision``): worker crashes are retried and
    supervision failures degrade down the tier ladder, so the sweep
    completes under injected process faults too.  The injector's
    :class:`~repro.resilience.FaultPlan` process-fault fields
    (``kill_worker``/``stall_worker``) are honored per model.
    """
    names = list(model_names) if model_names is not None \
        else list(all_model_files())
    guard = watchdog or WatchdogConfig()
    records: List[SweepRecord] = []
    for name in names:
        inject = inject_factory(name) if inject_factory else None
        record = SweepRecord(model=name, ok=False)
        records.append(record)
        try:
            compiled = compile_resilient(
                name, width=width, strict=strict,
                reproducer_dir=reproducer_dir, inject=inject)
        except Exception as err:  # noqa: BLE001 - sweep survives anything
            record.diagnostics.extend(getattr(err, "diagnostics", []))
            record.diagnostics.append(Diagnostic.from_exception(
                stage="compile", component="chain", exc=err,
                severity=Severity.ERROR, with_traceback=False, model=name))
            continue
        record.backend = compiled.backend
        record.fell_back = compiled.fell_back
        record.diagnostics.extend(compiled.diagnostics)
        hook = inject.step_hook if inject is not None else None
        runner = compiled.runner
        supervised = None
        if workers > 1:
            try:
                from ..runtime.supervised import SupervisedRunner
                supervised = SupervisedRunner(
                    compiled.kernel, n_workers=workers,
                    config=supervision,
                    fault_plan=getattr(inject, "plan", None))
                runner = supervised
            except Exception as err:  # noqa: BLE001 - e.g. SoA refusal
                record.diagnostics.append(Diagnostic.from_exception(
                    stage="run", component="supervised", exc=err,
                    severity=Severity.WARNING, with_traceback=False,
                    model=name))
        try:
            state = runner.make_state(n_cells)
            result = runner.run(state, n_steps, dt,
                                watchdog=guard, step_hook=hook)
        except NumericalDivergenceError as err:
            record.health = err.report
            record.diagnostics.append(Diagnostic.from_exception(
                stage="run", component=name, exc=err,
                severity=Severity.ERROR, with_traceback=False))
            continue
        except Exception as err:  # noqa: BLE001 - sweep survives anything
            record.diagnostics.append(Diagnostic.from_exception(
                stage="run", component=name, exc=err,
                severity=Severity.ERROR))
            continue
        finally:
            if supervised is not None:
                record.tier = supervised.tier
                record.diagnostics.extend(supervised.diagnostics)
                supervised.close()
        record.health = result.health
        record.seconds = result.elapsed_seconds
        record.ok = bool(result.health is None or result.health.ok)
    return records


def format_sweep_table(records: Sequence[SweepRecord],
                       title: str = "resilient sweep") -> str:
    """Render sweep records as the CLI/CI report table."""
    lines = [title,
             f"{'model':<24} {'backend':<12} {'status':<10} "
             f"{'retries':>7}  notes"]
    for rec in records:
        retries = rec.health.retries if rec.health else 0
        notes = "; ".join(
            d.message.split("\n")[0][:48] for d in rec.diagnostics
            if d.severity is not Severity.INFO)[:72]
        lines.append(f"{rec.model:<24} {rec.backend or '-':<12} "
                     f"{rec.status:<10} {retries:>7}  {notes}")
    n_ok = sum(1 for r in records if r.ok)
    lines.append(f"{n_ok}/{len(records)} models completed "
                 f"({sum(1 for r in records if r.fell_back)} via fallback, "
                 f"{sum(1 for r in records if r.health and r.health.retries)}"
                 f" recovered by dt-halving)")
    return "\n".join(lines)
