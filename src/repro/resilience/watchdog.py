"""Numerical watchdog: periodic NaN/Inf scans with checkpoint-and-retry.

Explicit (forward-Euler / Rush-Larsen) integration of stiff ionic
models diverges when ``dt`` is too large — state blows up to Inf then
NaN, and without a guard the run completes "successfully" with garbage.
The watchdog scans state and externals every ``check_interval`` steps
and applies a configurable policy on divergence:

* ``raise`` — fail fast with :class:`NumericalDivergenceError`;
* ``halve_dt`` — roll back to the last healthy checkpoint and retry
  the segment with ``dt * dt_factor``, up to ``max_retries`` times and
  never below ``min_dt`` (bounded backoff);
* ``abort_cell_report`` — stop the run, keeping the last healthy
  checkpoint, and report which cells diverged.

The ``halve_dt`` backoff is doubly bounded — a per-run retry budget
(``max_retries``) and a dt floor (``min_dt``) — and what happens when
the budget runs out is itself a policy (``exhausted_policy``): ``raise``
fails fast with :class:`NumericalDivergenceError`, while
``abort_report`` terminates the run cleanly at the last healthy
checkpoint with a structured report (``budget_exhausted`` set, the
diverged cells listed), so a persistently-NaN model in a sweep or a
supervised fleet ends with data instead of an unhandled exception.

Every decision lands in a :class:`~repro.resilience.diagnostics
.HealthReport` attached to the run's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .diagnostics import HealthReport

#: valid watchdog policies
POLICIES = ("raise", "halve_dt", "abort_cell_report")

#: valid actions when the halve_dt retry budget (or dt floor) runs out
EXHAUSTED_POLICIES = ("raise", "abort_report")


class NumericalDivergenceError(RuntimeError):
    """A run diverged and the policy said to fail (or backoff ran out)."""

    def __init__(self, message: str, report: HealthReport):
        super().__init__(message)
        self.report = report


@dataclass
class WatchdogConfig:
    """Tunables of the numerical watchdog."""

    policy: str = "halve_dt"
    check_interval: int = 25        # steps between NaN/Inf scans
    max_retries: int = 4            # per-run retry budget (rollbacks)
    dt_factor: float = 0.5          # dt multiplier per retry
    min_dt: float = 1e-9            # dt floor: never retry below this
    #: what to do when the retry budget or dt floor is exhausted:
    #: "raise" (fail fast) or "abort_report" (terminate at the last
    #: healthy checkpoint with a structured HealthReport)
    exhausted_policy: str = "raise"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown watchdog policy {self.policy!r}; "
                             f"one of {POLICIES}")
        if self.exhausted_policy not in EXHAUSTED_POLICIES:
            raise ValueError(
                f"unknown exhausted_policy {self.exhausted_policy!r}; "
                f"one of {EXHAUSTED_POLICIES}")
        if self.check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        if not 0.0 < self.dt_factor < 1.0:
            raise ValueError("dt_factor must be in (0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.min_dt <= 0.0:
            raise ValueError("min_dt must be > 0 (the dt floor)")


class NumericalWatchdog:
    """Scans a simulation state for non-finite values."""

    def __init__(self, config: WatchdogConfig = None):
        self.config = config or WatchdogConfig()

    def scan(self, state) -> List[str]:
        """Names of arrays containing NaN/Inf (empty list = healthy)."""
        bad: List[str] = []
        if not np.isfinite(state.sv).all():
            bad.append("sv")
        for name, array in state.externals.items():
            if not np.isfinite(array[:state.n_cells]).all():
                bad.append(name)
        return bad

    def diverged_cells(self, state) -> List[int]:
        """Indices of cells whose state or externals are non-finite."""
        finite = np.isfinite(state.state_matrix()).all(axis=1)
        for array in state.externals.values():
            finite &= np.isfinite(array[:state.n_cells])
        return np.flatnonzero(~finite).tolist()

    def new_report(self, dt: float) -> HealthReport:
        return HealthReport(policy=self.config.policy, initial_dt=dt,
                            final_dt=dt)
