"""Backend fallback chain: limpet_mlir -> icc_simd -> baseline.

The paper's toolchain quietly keeps 4 of 47 models on the baseline
generator because foreign C calls cannot be vectorized (§3.3.2).  This
module makes that degradation explicit and total: ``compile_resilient``
walks a chain of backend tiers, catching :class:`UnsupportedModelError`,
verifier failures, lowering errors — any compile-time exception — and
returns the first tier that produces a working kernel, together with a
structured :class:`~repro.resilience.diagnostics.Diagnostic` trail
explaining why each earlier tier was skipped.  ``strict=True`` turns
the chain off (fail fast, for CI).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..codegen import (GeneratedKernel, UnsupportedModelError,
                       generate_baseline, generate_icc_simd,
                       generate_limpet_mlir)
from ..frontend.model import IonicModel
from ..models import load_model
from ..obs import ledger as _ledger
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..runtime import KernelRunner
from .diagnostics import Diagnostic, Severity, log_diagnostic
from .sandbox import SandboxedPassManager, sandboxed_pipeline

#: the default tier order, strongest first
DEFAULT_CHAIN = ("limpet_mlir", "icc_simd", "baseline")


class ResilientCompileError(RuntimeError):
    """Every tier of the fallback chain failed."""

    def __init__(self, message: str, diagnostics: List[Diagnostic]):
        super().__init__(message)
        self.diagnostics = diagnostics


@dataclass
class ResilientKernel:
    """Outcome of a resilient compile: kernel + how we got it."""

    model_name: str
    backend: str                    # the tier that succeeded
    requested: str                  # the tier we first tried
    kernel: GeneratedKernel
    runner: KernelRunner
    diagnostics: List[Diagnostic] = field(default_factory=list)
    sandbox: Optional[SandboxedPassManager] = None

    @property
    def fell_back(self) -> bool:
        return self.backend != self.requested

    def describe(self) -> str:
        head = f"{self.model_name}: compiled via {self.backend!r}"
        if self.fell_back:
            head += f" (requested {self.requested!r})"
        return head


def _generate(model: IonicModel, backend: str, width: int,
              use_lut: bool) -> GeneratedKernel:
    if backend == "limpet_mlir":
        return generate_limpet_mlir(model, width, use_lut=use_lut)
    if backend == "icc_simd":
        return generate_icc_simd(model, width, use_lut=use_lut)
    if backend == "baseline":
        return generate_baseline(model, use_lut=use_lut)
    raise ValueError(f"unknown backend tier {backend!r}; "
                     f"one of {DEFAULT_CHAIN}")


def compile_resilient(model: Union[str, IonicModel],
                      chain: Sequence[str] = DEFAULT_CHAIN,
                      width: int = 8, use_lut: bool = True,
                      strict: bool = False, sandbox: bool = True,
                      reproducer_dir: Optional[pathlib.Path] = None,
                      inject=None, tune: bool = False,
                      tune_cells: int = 512, tune_dt: float = 0.01,
                      tune_db=None, artifacts=None) -> ResilientKernel:
    """Compile ``model`` down the backend fallback chain.

    Tries each tier in ``chain`` in order; a tier fails when code
    generation, the (sandboxed) pass pipeline, verification, or
    lowering raises.  Returns the first working tier's kernel wrapped
    in a :class:`ResilientKernel` whose diagnostics explain every
    skipped tier.  With ``strict=True`` the first tier's failure is
    re-raised instead (no fallback).  ``inject`` is an optional
    :class:`~repro.resilience.faultinject.FaultInjector` consulted per
    tier (testing hook).

    ``tune=True`` forwards the tuning-DB lookup to the winning tier's
    :class:`KernelRunner` (see ``KernelRunner(tune=True)``): a recorded
    winner for the ``tune_cells``/``tune_dt`` workload silently
    replaces the tier's default variant, and a miss changes nothing.

    When an AOT artifact bundle is mounted (``$LIMPET_ARTIFACT_DIR``,
    or an explicit ``artifacts=`` store), each tier first tries the
    bundle's zero-compile path — on a hit the kernel is exec'd straight
    from the bundle with no passes, verification or lowering at all;
    on a miss (or a stale/corrupt entry) a Diagnostic records the
    fall-back to ordinary JIT compilation.  Fault-injection runs
    (``inject=``) always JIT so drills exercise the real pipeline.
    """
    tune_kwargs = dict(tune=tune, tune_cells=tune_cells,
                       tune_dt=tune_dt, tune_db=tune_db)
    if isinstance(model, str):
        model = load_model(model)
    if not chain:
        raise ValueError("empty fallback chain")
    from ..aot.bundle import resolve_store, runner_from_store
    store = None if inject is not None else resolve_store(artifacts)
    diagnostics: List[Diagnostic] = []
    for tier, backend in enumerate(chain):
        if store is not None:
            try:
                runner = runner_from_store(
                    model, backend=backend,
                    width=1 if backend == "baseline" else width,
                    use_lut=use_lut, store=store, **tune_kwargs)
            except Exception as err:  # noqa: BLE001 - tier boundary
                runner = None
                diagnostics.append(log_diagnostic(Diagnostic.from_exception(
                    stage="compile", component="artifacts", exc=err,
                    severity=Severity.WARNING, with_traceback=False,
                    tier=tier, model=model.name)))
            if runner is not None:
                diagnostics.append(log_diagnostic(Diagnostic(
                    stage="compile", component=backend,
                    severity=Severity.INFO,
                    message=(f"loaded {model.name} from AOT artifact "
                             f"bundle via {backend!r} (zero compile)"),
                    data={"tier": tier, "model": model.name,
                          "artifact": True})))
                _ledger.record_event(
                    "compile", model=model.name, backend=backend,
                    cache="artifact", tier_index=tier,
                    key=runner.cache_key,
                    disposition="fell_back" if tier else "ok")
                return ResilientKernel(
                    model_name=model.name, backend=backend,
                    requested=chain[0], kernel=runner.generated,
                    runner=runner, diagnostics=diagnostics)
            diagnostics.append(log_diagnostic(Diagnostic(
                stage="compile", component="artifacts",
                severity=Severity.INFO,
                message=(f"no usable AOT artifact for {model.name} via "
                         f"{backend!r}; falling back to JIT"),
                data={"tier": tier, "model": model.name})))
        pipeline: Optional[SandboxedPassManager] = None
        try:
            with _trace.span("compile_tier", model=model.name,
                             backend=backend, tier=tier):
                if inject is not None:
                    inject.maybe_fail_backend(backend)
                kernel = _generate(model, backend, width, use_lut)
                if sandbox:
                    pipeline = sandboxed_pipeline(reproducer_dir)
                    if inject is not None:
                        inject.wrap_pipeline(pipeline)
                    runner = KernelRunner(kernel, optimize=True,
                                          verify=True, pipeline=pipeline,
                                          **tune_kwargs)
                else:
                    runner = KernelRunner(kernel, optimize=True,
                                          verify=True, **tune_kwargs)
        except Exception as err:  # noqa: BLE001 - tier boundary
            if strict:
                raise
            severity = (Severity.WARNING if isinstance(
                err, UnsupportedModelError) else Severity.ERROR)
            diagnostics.append(log_diagnostic(Diagnostic.from_exception(
                stage="compile", component=backend, exc=err,
                severity=severity, with_traceback=not isinstance(
                    err, UnsupportedModelError),
                tier=tier, model=model.name)))
            _metrics.counter("fallback_tier_skips_total",
                             "backend tiers skipped by the chain").inc()
            continue
        if pipeline is not None:
            diagnostics.extend(pipeline.diagnostics)
        diagnostics.append(log_diagnostic(Diagnostic(
            stage="compile", component=backend, severity=Severity.INFO,
            message=(f"compiled {model.name} via {backend!r}"
                     + (f" after {tier} skipped tier(s)" if tier else "")),
            data={"tier": tier, "model": model.name,
                  "quarantined": sorted(pipeline.quarantined)
                  if pipeline else []})))
        _ledger.record_event(
            "compile", model=model.name, backend=backend,
            cache=runner._cache_outcome(), tier_index=tier,
            key=runner.cache_key,
            compile_seconds=runner.compile_seconds,
            quarantined=sorted(pipeline.quarantined)
            if pipeline and pipeline.quarantined else None,
            disposition="fell_back" if tier else "ok")
        return ResilientKernel(model_name=model.name, backend=backend,
                               requested=chain[0], kernel=kernel,
                               runner=runner, diagnostics=diagnostics,
                               sandbox=pipeline)
    _ledger.record_event("compile", model=model.name,
                         disposition="failed",
                         tiers_tried=len(chain))
    raise ResilientCompileError(
        f"{model.name}: every backend tier failed "
        f"({', '.join(chain)}); see diagnostics", diagnostics)
