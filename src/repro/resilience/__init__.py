"""Resilient compile-and-run pipeline.

Four cooperating pieces keep a full 47-model sweep alive through
failing passes, unsupported models and diverging ODEs:

* :mod:`~repro.resilience.fallback` — backend fallback chain
  (``limpet_mlir -> icc_simd -> baseline``) with a structured
  diagnostic trail;
* :mod:`~repro.resilience.sandbox` — sandboxed pass manager with
  rollback, quarantine and on-disk reproducer bundles;
* :mod:`~repro.resilience.watchdog` — periodic NaN/Inf scans with
  checkpoint-and-retry (dt halving) inside
  :meth:`repro.runtime.KernelRunner.run`;
* :mod:`~repro.resilience.faultinject` — deterministic fault injection
  so all of the above is testable (``limpet-bench faults``).
"""

from .diagnostics import (LOGGER, Diagnostic, DivergenceEvent,
                          HealthReport, Severity, format_trail,
                          log_diagnostic)
from .fallback import (DEFAULT_CHAIN, ResilientCompileError,
                       ResilientKernel, compile_resilient)
from .faultinject import (FaultInjector, FaultPlan, InjectedFault,
                          corrupt_cache_entry, poison_state)
from .sandbox import (SandboxedPassManager, load_reproducer,
                      sandboxed_pipeline, write_reproducer)
from .watchdog import (EXHAUSTED_POLICIES, POLICIES,
                       NumericalDivergenceError, NumericalWatchdog,
                       WatchdogConfig)

__all__ = [
    "LOGGER", "Diagnostic", "DivergenceEvent", "HealthReport", "Severity",
    "format_trail", "log_diagnostic",
    "DEFAULT_CHAIN", "ResilientCompileError",
    "ResilientKernel", "compile_resilient", "FaultInjector", "FaultPlan",
    "InjectedFault", "corrupt_cache_entry", "poison_state",
    "SandboxedPassManager",
    "load_reproducer", "sandboxed_pipeline", "write_reproducer",
    "POLICIES", "EXHAUSTED_POLICIES", "NumericalDivergenceError",
    "NumericalWatchdog", "WatchdogConfig",
]
