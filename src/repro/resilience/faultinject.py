"""Deterministic fault injection for the resilience layer.

Resilience code that is never exercised is resilience theater; this
module injects the three failure classes the pipeline defends against,
deterministically (no randomness — a :class:`FaultPlan` says exactly
what breaks and when), so the fallback chain, the pass sandbox and the
numerical watchdog are all testable:

* **pass exceptions** — a named pass raises on its nth invocation;
* **IR corruption** — a named pass completes but leaves an
  unregistered op in the module, so the post-pass verifier rejects it;
* **runtime NaNs** — a step hook poisons chosen cells of the state (or
  an external array) at a given executed step;
* **backend failures** — a compile tier raises, forcing the chain to
  fall through (how the bench exercises full-sweep survival);
* **process faults** — a supervised worker dies (``os._exit``) or
  stalls its heartbeat mid-shard, exercising the restart/retry path of
  :class:`~repro.runtime.supervised.SupervisedRunner`;
* **on-disk corruption** — :func:`corrupt_cache_entry` scrambles a
  persisted cache entry so the checksum-quarantine path is provable.

``limpet-bench faults`` drives these scenarios end-to-end from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..ir.core import Module, Operation
from ..ir.passes.pass_manager import Pass, PassManager


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault-injection harness."""


@dataclass
class FaultPlan:
    """What to break, where, and when — fully deterministic."""

    #: pass that raises :class:`InjectedFault` (by pass name)
    fail_pass: Optional[str] = None
    #: ... on this (1-based) invocation of that pass
    fail_pass_at: int = 1
    #: pass that completes but corrupts the module (verifier must catch)
    corrupt_after_pass: Optional[str] = None
    #: compile tiers that raise before codegen even starts
    fail_backends: Tuple[str, ...] = ()
    #: executed step (0-based, counting retries) after which state is poisoned
    nan_at_step: Optional[int] = None
    #: "sv" or an external array name ("Vm", "Iion", ...)
    nan_array: str = "sv"
    #: cell indices to poison
    nan_cells: Tuple[int, ...] = (0,)
    #: the poison value (NaN by default; use np.inf for overflow-style)
    nan_value: float = float("nan")
    #: supervised worker slot that crashes (``os._exit``) mid-shard
    kill_worker: Optional[int] = None
    #: ... on this (1-based) task dispatched to that worker
    kill_worker_at_task: int = 1
    #: supervised worker slot whose heartbeat (and task) stalls
    stall_worker: Optional[int] = None
    #: ... on this (1-based) task dispatched to that worker
    stall_worker_at_task: int = 1
    #: how long the stalled worker sleeps (parent should give up first)
    stall_worker_seconds: float = 30.0


class _FaultyPassProxy(Pass):
    """Wraps a real pass; raises or corrupts per the plan."""

    def __init__(self, inner: Pass, injector: "FaultInjector"):
        self.inner = inner
        self.injector = injector
        self.name = inner.name
        self.invocations = 0

    def run(self, module: Module) -> bool:
        self.invocations += 1
        plan = self.injector.plan
        if plan.fail_pass == self.name and \
                self.invocations == plan.fail_pass_at:
            raise InjectedFault(
                f"injected exception in pass {self.name!r} "
                f"(invocation {self.invocations})")
        changed = self.inner.run(module)
        if plan.corrupt_after_pass == self.name and \
                self.invocations == plan.fail_pass_at:
            _corrupt_module(module)
            return True
        return changed


def _corrupt_module(module: Module) -> None:
    """Plant an unregistered op so the verifier rejects the module."""
    for fn in module.funcs():
        blocks = fn.regions[0].blocks if fn.regions else []
        if blocks and blocks[0].ops:    # skip bodyless declarations
            blocks[0].insert_before(blocks[0].ops[0],
                                    Operation("fault.corrupt"))
            return
    module.append(Operation("fault.corrupt"))


class FaultInjector:
    """Applies a :class:`FaultPlan` to pipelines, backends and runs.

    One injector instance tracks its own executed-step counter, so the
    runtime NaN fires exactly once even when the watchdog rolls the
    simulation state (and its ``steps_done``) back.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._executed_steps = 0
        self._nan_fired = False

    # -- compile-time ------------------------------------------------------------

    def maybe_fail_backend(self, backend: str) -> None:
        if backend in self.plan.fail_backends:
            raise InjectedFault(f"injected backend failure: {backend!r}")

    def wrap_pipeline(self, manager: PassManager) -> PassManager:
        """Replace targeted passes with faulty proxies, in place."""
        targets = {self.plan.fail_pass, self.plan.corrupt_after_pass}
        targets.discard(None)
        manager.passes = [
            _FaultyPassProxy(p, self) if p.name in targets else p
            for p in manager.passes]
        return manager

    # -- runtime -----------------------------------------------------------------

    def step_hook(self, state) -> None:
        """Per-step runner hook: poison the state at the planned step."""
        step = self._executed_steps
        self._executed_steps += 1
        if self._nan_fired or self.plan.nan_at_step is None:
            return
        if step < self.plan.nan_at_step:
            return
        self._nan_fired = True
        cells = list(self.plan.nan_cells)
        value = self.plan.nan_value
        if self.plan.nan_array == "sv":
            matrix = state.state_matrix()
            matrix[cells, :] = value
            state.set_state(matrix)
        else:
            state.externals[self.plan.nan_array][cells] = value

    @property
    def fired(self) -> bool:
        """Whether the runtime NaN has been injected yet."""
        return self._nan_fired


def poison_state(state, cells=(0,), array: str = "sv",
                 value: float = float("nan")) -> None:
    """Directly poison a simulation state (test helper)."""
    plan = FaultPlan(nan_at_step=0, nan_array=array,
                     nan_cells=tuple(cells), nan_value=value)
    injector = FaultInjector(plan)
    injector.step_hook(state)
    assert injector.fired


def corrupt_cache_entry(target, mode: str = "truncate"):
    """Deterministically corrupt one persisted cache entry on disk.

    ``target`` is a :class:`~repro.runtime.kernel_cache.KernelCache`,
    a cache directory, or a single entry/DB file path.  ``mode`` is
    ``truncate`` (torn write: the file ends mid-JSON) or ``scramble``
    (bit rot: valid JSON, wrong checksum).  Returns the corrupted path,
    or ``None`` when there was nothing to corrupt — so drills can
    assert the fault actually landed.
    """
    import pathlib
    if isinstance(target, (str, pathlib.PurePath)):
        root = target                   # Path.root is "/" — don't use it
    else:
        root = getattr(target, "root", target)
    path = pathlib.Path(root)
    if path.is_dir():
        entries = sorted(p for p in path.glob("*.json")
                         if p.name != "stats.json")
        if not entries:
            return None
        path = entries[0]
    if not path.is_file():
        return None
    if mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[:max(len(data) // 2, 1)])
    elif mode == "scramble":
        import json
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
        if isinstance(payload, dict):
            payload["checksum"] = "0" * 64
            path.write_text(json.dumps(payload))
        else:
            path.write_text("{}")
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
