"""Sandboxed pass execution: snapshot -> run -> verify -> commit.

MLIR's structured-codegen line of work keeps long pass pipelines sound
by verifying after each transform; this module goes one step further
the way a production driver must: every pass runs against a snapshot of
the module, and when the pass either raises or leaves the module in a
state the verifier rejects, the module is **rolled back** to the
snapshot, the pass is **quarantined** for the remainder of the
pipeline, and a **reproducer bundle** (pre-pass IR + pass name +
traceback) is written to disk so the failure can be replayed offline::

    <reproducer_dir>/<pass>-<n>/
        module.ir       # the generic-form IR the pass was given
        meta.json       # pass name, error type/message, pipeline position
        traceback.txt   # the full Python traceback

The bundle round-trips through :func:`load_reproducer`, which re-parses
``module.ir`` into a fresh :class:`~repro.ir.core.Module`.
"""

from __future__ import annotations

import json
import pathlib
import time
import traceback as _traceback
from typing import Dict, List, Optional, Set, Tuple

from ..ir.core import Module
from ..ir.parser import parse_module
from ..ir.passes.pass_manager import Pass, PassManager, PassStatistics
from ..ir.verifier import VerificationError, verify_module
from ..obs import metrics as _metrics
from ..obs.passes import IRSnapshotInstrumentation
from .diagnostics import Diagnostic, Severity, log_diagnostic


def write_reproducer(directory: pathlib.Path, pass_name: str,
                     ir_text: str, error: BaseException,
                     position: int = 0) -> pathlib.Path:
    """Write one reproducer bundle; returns the bundle directory."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    serial = 0
    bundle = directory / f"{pass_name.replace('.', '_')}-{serial}"
    while bundle.exists():
        serial += 1
        bundle = directory / f"{pass_name.replace('.', '_')}-{serial}"
    bundle.mkdir()
    (bundle / "module.ir").write_text(ir_text)
    (bundle / "traceback.txt").write_text("".join(_traceback.format_exception(
        type(error), error, error.__traceback__)))
    meta = {"pass": pass_name, "error_type": type(error).__name__,
            "message": str(error), "pipeline_position": position,
            "format": "repro-reproducer-v1"}
    (bundle / "meta.json").write_text(json.dumps(meta, indent=2))
    return bundle


def load_reproducer(bundle: pathlib.Path) -> Tuple[Module, Dict]:
    """Load a bundle back: (re-parsed pre-pass module, metadata)."""
    bundle = pathlib.Path(bundle)
    meta = json.loads((bundle / "meta.json").read_text())
    module = parse_module((bundle / "module.ir").read_text())
    return module, meta


def _rollback(module: Module, snapshot_text: str) -> None:
    """Restore ``module`` in place from its printed snapshot."""
    restored = parse_module(snapshot_text)
    module.body = restored.body
    module.attributes = dict(restored.attributes)


class SandboxedPassManager(PassManager):
    """A :class:`PassManager` where every pass runs in a sandbox.

    On a pass exception or a post-pass verification failure the module
    is rolled back to the pre-pass snapshot, the pass is quarantined
    (skipped for the rest of this manager's lifetime), a diagnostic is
    recorded, and — when ``reproducer_dir`` is set — a reproducer
    bundle is written.  The pipeline itself never raises for a
    quarantined pass; callers inspect :attr:`diagnostics` and
    :attr:`quarantined`.

    Snapshots come through the shared
    :class:`~repro.ir.passes.PassInstrumentation` hooks: an
    :class:`~repro.obs.passes.IRSnapshotInstrumentation` captures the
    printed pre-pass IR in ``before_pass`` (alongside any tracing or
    op-count instruments the caller attached), and rollback re-parses
    its ``last`` capture — there is no private snapshotting path.
    """

    def __init__(self, passes: Optional[List[Pass]] = None,
                 verify_each: bool = True, max_iterations: int = 8,
                 reproducer_dir: Optional[pathlib.Path] = None):
        super().__init__(passes=passes, verify_each=verify_each,
                         max_iterations=max_iterations)
        self.reproducer_dir = (pathlib.Path(reproducer_dir)
                               if reproducer_dir else None)
        self.quarantined: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []
        self.reproducers: List[pathlib.Path] = []
        self._snapshots = IRSnapshotInstrumentation()
        self.add_instrumentation(self._snapshots)

    # -- sandboxed execution -----------------------------------------------------

    def _quarantine(self, pass_: Pass, position: int, error: BaseException,
                    snapshot: str, stage: str) -> None:
        self.quarantined.add(pass_.name)
        bundle: Optional[pathlib.Path] = None
        if self.reproducer_dir is not None:
            bundle = write_reproducer(self.reproducer_dir, pass_.name,
                                      snapshot, error, position)
            self.reproducers.append(bundle)
        self.diagnostics.append(log_diagnostic(Diagnostic.from_exception(
            stage=stage, component=pass_.name, exc=error,
            severity=Severity.WARNING,
            reproducer=str(bundle) if bundle else None,
            pipeline_position=position)))
        _metrics.counter("pass_quarantines_total",
                         "passes quarantined by the sandbox").inc()
        # black-box the lead-up next to the IR reproducer bundle (or
        # the default flight directory when no bundle dir is set)
        from ..obs import flight as _flight
        _flight.dump("pass_quarantine", directory=self.reproducer_dir,
                     extra={"pass": pass_.name, "position": position,
                            "stage": stage,
                            "reproducer": str(bundle) if bundle else None})

    def run(self, module: Module, fixed_point: bool = False) -> bool:
        """Run the pipeline with per-pass rollback; never raises for a
        quarantined pass (the module is always left verifying)."""
        any_change = False
        for _ in range(self.max_iterations if fixed_point else 1):
            round_change = False
            for position, pass_ in enumerate(self.passes):
                if pass_.name in self.quarantined:
                    continue
                stats = self.statistics.setdefault(pass_.name,
                                                   PassStatistics())
                self._notify_before(pass_, module)
                snapshot = self._snapshots.last
                start = time.perf_counter()
                try:
                    changed = pass_.run(module)
                except Exception as err:  # noqa: BLE001 - sandbox boundary
                    seconds = time.perf_counter() - start
                    stats.seconds += seconds
                    stats.runs += 1
                    _rollback(module, snapshot)
                    self._quarantine(pass_, position, err, snapshot, "pass")
                    self._notify_error(pass_, module, err, seconds)
                    continue
                seconds = time.perf_counter() - start
                stats.seconds += seconds
                stats.runs += 1
                try:
                    verify_module(module)
                except VerificationError as err:
                    _rollback(module, snapshot)
                    self._quarantine(pass_, position, err, snapshot,
                                     "verify")
                    self._notify_error(pass_, module, err, seconds)
                    continue
                if changed:
                    stats.changed += 1
                    round_change = True
                self._notify_after(pass_, module, changed, seconds)
            any_change = any_change or round_change
            if not round_change:
                break
        return any_change


def sandboxed_pipeline(reproducer_dir: Optional[pathlib.Path] = None,
                       max_iterations: int = 8) -> SandboxedPassManager:
    """The default pipeline (canonicalize/CSE/LICM/DCE) in a sandbox."""
    from ..ir.passes.canonicalize import Canonicalize
    from ..ir.passes.cse import CSE
    from ..ir.passes.dce import DCE
    from ..ir.passes.licm import LICM
    return SandboxedPassManager([Canonicalize(), CSE(), LICM(), DCE()],
                                verify_each=True,
                                max_iterations=max_iterations,
                                reproducer_dir=reproducer_dir)
