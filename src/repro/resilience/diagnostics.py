"""Structured diagnostics for the resilient compile-and-run pipeline.

Every recovery action the resilience layer takes — a backend tier
skipped, a pass quarantined, a run rolled back to a checkpoint — is
recorded as a :class:`Diagnostic` instead of (or in addition to) an
exception.  A bench sweep over the full 47-model suite then finishes
with a per-model diagnostic trail rather than dying on the first
failing model, mirroring how production compiler stacks (NMODL's
per-backend fallback paths, MLIR's transform-level verification)
degrade gracefully.
"""

from __future__ import annotations

import enum
import logging
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: every resilience diagnostic is also emitted on this logger, so user
#: logging config (handlers, levels, formatters) sees the trail without
#: touching the structured API; the NullHandler keeps an unconfigured
#: process quiet (the CLI renders trails itself via ``format_trail``)
LOGGER = logging.getLogger("repro.resilience")
LOGGER.addHandler(logging.NullHandler())


class Severity(enum.Enum):
    """How bad one diagnostic is."""

    INFO = "info"          # normal operation worth recording
    WARNING = "warning"    # recovered: a fallback or retry succeeded
    ERROR = "error"        # unrecovered: a tier/pass/run was abandoned

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class Diagnostic:
    """One structured record of a resilience decision.

    ``stage`` names the pipeline layer (``compile``, ``pass``, ``verify``,
    ``run``); ``component`` the specific backend, pass, or array involved.
    """

    stage: str
    component: str
    message: str
    severity: Severity = Severity.WARNING
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_exception(cls, stage: str, component: str, exc: BaseException,
                       severity: Severity = Severity.WARNING,
                       with_traceback: bool = True,
                       **data: Any) -> "Diagnostic":
        tb = None
        if with_traceback:
            tb = "".join(_traceback.format_exception(
                type(exc), exc, exc.__traceback__))
        return cls(stage=stage, component=component, message=str(exc),
                   severity=severity, error_type=type(exc).__name__,
                   traceback=tb, data=dict(data))

    def to_dict(self) -> Dict[str, Any]:
        return {"stage": self.stage, "component": self.component,
                "message": self.message, "severity": self.severity.value,
                "error_type": self.error_type, "traceback": self.traceback,
                "data": dict(self.data)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        return cls(stage=payload["stage"], component=payload["component"],
                   message=payload["message"],
                   severity=Severity(payload.get("severity", "warning")),
                   error_type=payload.get("error_type"),
                   traceback=payload.get("traceback"),
                   data=dict(payload.get("data") or {}))

    def describe(self) -> str:
        """One human-readable line, CLI/report friendly."""
        kind = f" [{self.error_type}]" if self.error_type else ""
        return (f"{self.severity.value:<7} {self.stage}/{self.component}"
                f"{kind}: {self.message}")


_LOG_LEVELS = {Severity.INFO: logging.INFO,
               Severity.WARNING: logging.WARNING,
               Severity.ERROR: logging.ERROR}


def log_diagnostic(diag: Diagnostic) -> Diagnostic:
    """Emit ``diag`` on the ``repro.resilience`` logger and the active
    trace, then return it (so call sites can append the same object to
    their structured trail — the trail API is unchanged).

    Severity maps onto logging levels (INFO/WARNING/ERROR); the trace
    export is an instant event on the current span, so recovery
    decisions show up inline in ``chrome://tracing`` timelines.
    """
    kind = f" [{diag.error_type}]" if diag.error_type else ""
    LOGGER.log(_LOG_LEVELS.get(diag.severity, logging.WARNING),
               "%s/%s%s: %s", diag.stage, diag.component, kind,
               diag.message)
    from ..obs import trace as _trace
    _trace.instant(f"diagnostic:{diag.stage}/{diag.component}",
                   severity=diag.severity.value, message=diag.message,
                   error_type=diag.error_type)
    return diag


@dataclass
class DivergenceEvent:
    """One NaN/Inf detection by the numerical watchdog."""

    step: int                       # steps completed when detected
    time: float                     # simulation time at detection
    dt: float                       # dt in effect when it happened
    arrays: List[str]               # which state/external arrays diverged
    action: str = "detected"        # detected | rolled_back | aborted

    def to_dict(self) -> Dict[str, Any]:
        return {"step": self.step, "time": self.time, "dt": self.dt,
                "arrays": list(self.arrays), "action": self.action}


@dataclass
class HealthReport:
    """Per-run numerical health, produced by the watchdog.

    ``ok`` means the run finished with finite state; ``retries`` counts
    checkpoint rollbacks taken (dt-halving policy); ``aborted`` is set
    by the ``abort_cell_report`` policy when divergence persisted.
    """

    policy: str
    initial_dt: float
    final_dt: float = 0.0
    checks: int = 0
    retries: int = 0
    ok: bool = True
    aborted: bool = False
    #: the halve_dt retry budget (or dt floor) ran out; set when the
    #: exhausted_policy terminated the run with this report instead of
    #: raising (a persistently-NaN model ends structured, not looping)
    budget_exhausted: bool = False
    events: List[DivergenceEvent] = field(default_factory=list)
    diverged_cells: List[int] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def nan_events(self) -> int:
        return len(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {"policy": self.policy, "initial_dt": self.initial_dt,
                "final_dt": self.final_dt, "checks": self.checks,
                "retries": self.retries, "ok": self.ok,
                "aborted": self.aborted,
                "budget_exhausted": self.budget_exhausted,
                "events": [e.to_dict() for e in self.events],
                "diverged_cells": list(self.diverged_cells),
                "diagnostics": [d.to_dict() for d in self.diagnostics]}

    def summary(self) -> str:
        status = "ok" if self.ok else ("aborted" if self.aborted
                                       else "diverged")
        if self.budget_exhausted:
            status += " (retry budget exhausted)"
        line = (f"health: {status} | policy={self.policy} "
                f"checks={self.checks} nan_events={self.nan_events} "
                f"retries={self.retries} dt {self.initial_dt:g}")
        if self.final_dt and self.final_dt != self.initial_dt:
            line += f" -> {self.final_dt:g}"
        if self.diverged_cells:
            shown = ", ".join(str(c) for c in self.diverged_cells[:8])
            more = ("..." if len(self.diverged_cells) > 8 else "")
            line += f" | diverged cells: {shown}{more}"
        return line


def format_trail(diagnostics: List[Diagnostic]) -> str:
    """Render a diagnostic trail as an indented block."""
    if not diagnostics:
        return "(no diagnostics)"
    return "\n".join("  " + d.describe() for d in diagnostics)
