"""The 43-model suite: names, files, size classes, provenance.

The paper splits its 43 openCARP models into three sets by baseline
execution time (§4.1): **small** — 8 models running under a minute on
the testbed, **medium** — 22 models at 1–5 minutes, **large** — 13
models over 5 minutes ("usually the most precise and close to the
physiology ... the most relevant ones for many practical applications").
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

from ..frontend import IonicModel, load_model_file

MODEL_DIR = pathlib.Path(__file__).resolve().parent / "easyml"

SMALL_MODELS = [
    "Plonsey",
    "FitzHughNagumo",
    "AlievPanfilov",
    "MitchellSchaeffer",
    "IKChCheng",
    "ISAC_Hu",
    "StressLumens",
    "Pathmanathan",
]

MEDIUM_MODELS = [
    "HodgkinHuxley",
    "DrouhardRoberge",
    "BeelerReuter",
    "Noble62",
    "LuoRudy91",
    "Stress_Niederer",
    "LuoRudy94",
    "McAllisterNobleTsien",
    "DiFrancescoNoble",
    "EarmNoble",
    "DemirClarkGiles",
    "Nygren",
    "LindbladAtrial",
    "Maleckar",
    "Courtemanche",
    "RamirezNattel",
    "FoxMcHargGilmour",
    "PanditGiles",
    "KurataSANode",
    "ShannonBers",
    "MahajanShiferaw",
    "StewartPurkinje",
]

LARGE_MODELS = [
    "TenTusscherNNP",
    "TenTusscherPanfilov",
    "OHara",
    "GrandiPanditVoigt",
    "GrandiBers",
    "WangSobie",
    "IyerMazhariWinslow",
    "BondarenkoSzigeti",
    "HundRudy",
    "TomekORd",
    "TrovatoPurkinje",
    "HeijmanRudy",
    "KoivumakiAtrial",
]

ALL_MODELS = SMALL_MODELS + MEDIUM_MODELS + LARGE_MODELS

#: the 4 models that call foreign (external C) functions and therefore
#: cannot be vectorized by limpetMLIR — "43 out of 47 ionic models for
#: cardiac cell simulation are supported" (§3.3.2).  They compile and
#: run on the baseline backend.
UNSUPPORTED_MODELS = ["ARPF", "Campbell", "Tong", "UCLA_RAB"]

SIZE_CLASS: Dict[str, str] = {}
for _name in UNSUPPORTED_MODELS:
    SIZE_CLASS[_name] = "small"
for _name in SMALL_MODELS:
    SIZE_CLASS[_name] = "small"
for _name in MEDIUM_MODELS:
    SIZE_CLASS[_name] = "medium"
for _name in LARGE_MODELS:
    SIZE_CLASS[_name] = "large"

#: hand-written from the literature vs. structurally synthesized
HAND_WRITTEN = {
    "Plonsey", "FitzHughNagumo", "AlievPanfilov", "MitchellSchaeffer",
    "IKChCheng", "ISAC_Hu", "StressLumens", "Pathmanathan",
    "HodgkinHuxley", "DrouhardRoberge", "BeelerReuter", "Noble62",
    "LuoRudy91", "Stress_Niederer",
}


@dataclass(frozen=True)
class ModelEntry:
    """Registry record for one ionic model."""

    name: str
    size_class: str
    path: pathlib.Path
    hand_written: bool


def all_model_files():
    """Every shipped model, supported or not: 47 files like openCARP."""
    return ALL_MODELS + UNSUPPORTED_MODELS


def model_entry(name: str) -> ModelEntry:
    if name not in SIZE_CLASS:
        raise KeyError(f"unknown ionic model {name!r}; "
                       f"see repro.models.ALL_MODELS")
    return ModelEntry(name=name, size_class=SIZE_CLASS[name],
                      path=MODEL_DIR / f"{name}.model",
                      hand_written=name in HAND_WRITTEN)


def list_models(size_class: Optional[str] = None) -> List[ModelEntry]:
    """All registry entries, optionally filtered by size class."""
    names = ALL_MODELS if size_class is None else \
        [n for n in ALL_MODELS if SIZE_CLASS[n] == size_class]
    return [model_entry(n) for n in names]


@lru_cache(maxsize=None)
def load_model(name: str) -> IonicModel:
    """Parse + analyze a registered model (cached)."""
    entry = model_entry(name)
    return load_model_file(entry.path)


def verify_registry() -> None:
    """Check the 47-model inventory and the paper's 8/22/13 split."""
    assert len(SMALL_MODELS) == 8, len(SMALL_MODELS)
    assert len(MEDIUM_MODELS) == 22, len(MEDIUM_MODELS)
    assert len(LARGE_MODELS) == 13, len(LARGE_MODELS)
    assert len(ALL_MODELS) == 43
    assert len(UNSUPPORTED_MODELS) == 4
    assert len(set(all_model_files())) == 47, "duplicate model names"
    for name in all_model_files():
        path = MODEL_DIR / f"{name}.model"
        if not path.exists():
            raise FileNotFoundError(path)
