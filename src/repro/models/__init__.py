"""The 43-model ionic suite and its registry."""

from .registry import (ALL_MODELS, HAND_WRITTEN, LARGE_MODELS, MEDIUM_MODELS,
                       MODEL_DIR, SIZE_CLASS, SMALL_MODELS,
                       UNSUPPORTED_MODELS, ModelEntry, all_model_files,
                       list_models, load_model, model_entry, verify_registry)

__all__ = ["ALL_MODELS", "HAND_WRITTEN", "LARGE_MODELS", "MEDIUM_MODELS",
           "MODEL_DIR", "SIZE_CLASS", "SMALL_MODELS", "UNSUPPORTED_MODELS",
           "ModelEntry", "all_model_files", "list_models", "load_model",
           "model_entry", "verify_registry"]
