"""Tokenizer for the EasyML ionic-model markup language.

EasyML borrows C's expression syntax (the paper, §2.2: "Variable
assignments, if statements and the precedence of arithmetic operations
follow those of C/C++"), adds ``.markup(args)`` clauses attached to
declarations, ``group { ... }`` blocks, and the ``diff_``/``_init``
naming conventions handled later by the frontend.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List

from .errors import LexerError


class TokenKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    # punctuation / operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    CARET = auto()          # exponent in some model sources
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()
    DOT = auto()
    ASSIGN = auto()
    QUESTION = auto()
    COLON = auto()
    # comparisons / logic
    EQ = auto()
    NE = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    # keywords
    IF = auto()
    ELSE = auto()
    GROUP = auto()
    EOF = auto()


KEYWORDS = {
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "group": TokenKind.GROUP,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}

_TWO_CHAR = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "^": TokenKind.CARET,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "?": TokenKind.QUESTION,
    ":": TokenKind.COLON,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}

# Numbers: 1, 1.5, .5, 1., 1e-3, 2.5E+4, 1.e2
_NUMBER_RE = re.compile(r"(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def number_value(self) -> float:
        if self.kind is not TokenKind.NUMBER:
            raise ValueError(f"token {self.text!r} is not a number")
        return float(self.text)

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer with C, C++ and shell comment support."""

    def __init__(self, source: str, filename: str = "<model>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column, self.filename)

    def _advance(self, count: int) -> None:
        for ch in self.source[self.pos:self.pos + count]:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance(1)
            elif self.source.startswith("//", self.pos) or ch == "#":
                end = self.source.find("\n", self.pos)
                self._advance((end if end != -1 else len(self.source)) - self.pos)
            elif self.source.startswith("/*", self.pos):
                end = self.source.find("*/", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated block comment")
                self._advance(end + 2 - self.pos)
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self.line, self.column)
                return
            start_line, start_col = self.line, self.column
            text = self.source[self.pos:]
            two = text[:2]
            if two in _TWO_CHAR:
                self._advance(2)
                yield Token(_TWO_CHAR[two], two, start_line, start_col)
                continue
            ch = text[0]
            if ch.isdigit() or (ch == "." and len(text) > 1
                                and text[1].isdigit()):
                match = _NUMBER_RE.match(text)
                assert match is not None
                self._advance(match.end())
                yield Token(TokenKind.NUMBER, match.group(),
                            start_line, start_col)
                continue
            if ch.isalpha() or ch == "_":
                match = _IDENT_RE.match(text)
                assert match is not None
                word = match.group()
                self._advance(match.end())
                kind = KEYWORDS.get(word, TokenKind.IDENT)
                yield Token(kind, word, start_line, start_col)
                continue
            if ch == '"':
                end = text.find('"', 1)
                if end == -1:
                    raise self._error("unterminated string literal")
                self._advance(end + 1)
                yield Token(TokenKind.STRING, text[1:end],
                            start_line, start_col)
                continue
            if ch in _ONE_CHAR:
                self._advance(1)
                yield Token(_ONE_CHAR[ch], ch, start_line, start_col)
                continue
            raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str, filename: str = "<model>") -> List[Token]:
    """Tokenize EasyML source (including the trailing EOF token)."""
    return list(Lexer(source, filename).tokens())
