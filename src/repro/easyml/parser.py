"""Recursive-descent parser for EasyML.

The grammar (paper §2.2 plus the openCARP EasyML reference):

.. code-block:: text

    model      := stmt*
    stmt       := group | if | simple
    group      := 'group' '{' member* '}' markup* ';'
    member     := IDENT ('=' expr)? ';'
    if         := 'if' '(' expr ')' block ('else' (block | if))?
    block      := '{' stmt* '}' | stmt
    simple     := IDENT ('=' expr)? ';' trailing_markup*
    trailing_markup := '.' IDENT '(' markup_args? ')' ';'
    expr       := C expression syntax incl. '?:', comparisons, calls

A trailing markup clause attaches to the immediately preceding
declaration/assignment, matching usage like
``Vm; .external(); .nodal(); .lookup(-100,100,0.05);``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from .ast_nodes import (Assign, Binary, Call, Declare, Expr, Group, If,
                        Markup, ModelAST, Name, Number, Stmt, Ternary, Unary)
from .errors import SyntaxErrorEasyML
from .lexer import Token, TokenKind, tokenize


class Parser:
    def __init__(self, source: str, name: str = "model",
                 filename: str = "<model>"):
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self.name = name
        self.filename = filename

    # -- token helpers ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._next()
        return None

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            wanted = what or kind.name
            raise SyntaxErrorEasyML(
                f"expected {wanted}, got {token.text!r}",
                token.line, token.column, self.filename)
        return self._next()

    # -- entry ------------------------------------------------------------------

    def parse_model(self) -> ModelAST:
        statements: List[Stmt] = []
        while not self._check(TokenKind.EOF):
            statements.append(self.parse_stmt())
        return ModelAST(self.name, tuple(statements))

    # -- statements ----------------------------------------------------------------

    def parse_stmt(self) -> Stmt:
        if self._check(TokenKind.GROUP):
            return self.parse_group()
        if self._check(TokenKind.IF):
            return self.parse_if()
        return self.parse_simple()

    def parse_group(self) -> Group:
        start = self._expect(TokenKind.GROUP)
        self._expect(TokenKind.LBRACE)
        members: List[Declare] = []
        while not self._accept(TokenKind.RBRACE):
            name_tok = self._expect(TokenKind.IDENT, "group member name")
            init: Optional[Expr] = None
            if self._accept(TokenKind.ASSIGN):
                init = self.parse_expr()
            self._expect(TokenKind.SEMI)
            members.append(Declare(name_tok.text, (), init, name_tok.line))
        markups = self.parse_markup_clauses(inline=True)
        self._expect(TokenKind.SEMI)
        return Group(tuple(members), tuple(markups), start.line)

    def parse_if(self) -> If:
        start = self._expect(TokenKind.IF)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self.parse_block()
        else_body: Tuple[Stmt, ...] = ()
        if self._accept(TokenKind.ELSE):
            if self._check(TokenKind.IF):
                else_body = (self.parse_if(),)
            else:
                else_body = self.parse_block()
        return If(cond, then_body, else_body, start.line)

    def parse_block(self) -> Tuple[Stmt, ...]:
        if self._accept(TokenKind.LBRACE):
            body: List[Stmt] = []
            while not self._accept(TokenKind.RBRACE):
                body.append(self.parse_stmt())
            return tuple(body)
        return (self.parse_stmt(),)

    def parse_simple(self) -> Stmt:
        name_tok = self._expect(TokenKind.IDENT, "variable name")
        init: Optional[Expr] = None
        if self._accept(TokenKind.ASSIGN):
            init = self.parse_expr()
        self._expect(TokenKind.SEMI)
        markups = self.parse_trailing_markups()
        if markups or init is None:
            return Declare(name_tok.text, tuple(markups), init, name_tok.line)
        return Assign(name_tok.text, init, name_tok.line)

    def parse_trailing_markups(self) -> List[Markup]:
        """Zero or more ``.markup(args);`` clauses after a statement."""
        markups: List[Markup] = []
        while self._check(TokenKind.DOT):
            markups.append(self.parse_markup())
            self._expect(TokenKind.SEMI)
        return markups

    def parse_markup_clauses(self, inline: bool) -> List[Markup]:
        """Markups glued to a group: ``}.nodal().param();`` style."""
        markups: List[Markup] = []
        while self._check(TokenKind.DOT):
            markups.append(self.parse_markup())
        return markups

    def parse_markup(self) -> Markup:
        self._expect(TokenKind.DOT)
        name_tok = self._expect(TokenKind.IDENT, "markup name")
        args: List[Union[float, str]] = []
        self._expect(TokenKind.LPAREN)
        while not self._check(TokenKind.RPAREN):
            args.append(self.parse_markup_arg())
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        return Markup(name_tok.text, tuple(args))

    def parse_markup_arg(self) -> Union[float, str]:
        negative = bool(self._accept(TokenKind.MINUS))
        token = self._next()
        if token.kind is TokenKind.NUMBER:
            value = token.number_value
            return -value if negative else value
        if token.kind in (TokenKind.IDENT, TokenKind.STRING) and not negative:
            return token.text
        raise SyntaxErrorEasyML(
            f"bad markup argument {token.text!r}",
            token.line, token.column, self.filename)

    # -- expressions: C precedence climbing -------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_or()
        if self._accept(TokenKind.QUESTION):
            then = self.parse_expr()
            self._expect(TokenKind.COLON)
            otherwise = self.parse_ternary()
            return Ternary(cond, then, otherwise)
        return cond

    def parse_or(self) -> Expr:
        expr = self.parse_and()
        while self._accept(TokenKind.OR):
            expr = Binary("or", expr, self.parse_and())
        return expr

    def parse_and(self) -> Expr:
        expr = self.parse_equality()
        while self._accept(TokenKind.AND):
            expr = Binary("and", expr, self.parse_equality())
        return expr

    def parse_equality(self) -> Expr:
        expr = self.parse_relational()
        while True:
            if self._accept(TokenKind.EQ):
                expr = Binary("==", expr, self.parse_relational())
            elif self._accept(TokenKind.NE):
                expr = Binary("!=", expr, self.parse_relational())
            else:
                return expr

    def parse_relational(self) -> Expr:
        expr = self.parse_additive()
        mapping = {TokenKind.LT: "<", TokenKind.LE: "<=",
                   TokenKind.GT: ">", TokenKind.GE: ">="}
        while self._peek().kind in mapping:
            op = mapping[self._next().kind]
            expr = Binary(op, expr, self.parse_additive())
        return expr

    def parse_additive(self) -> Expr:
        expr = self.parse_multiplicative()
        while True:
            if self._accept(TokenKind.PLUS):
                expr = Binary("+", expr, self.parse_multiplicative())
            elif self._accept(TokenKind.MINUS):
                expr = Binary("-", expr, self.parse_multiplicative())
            else:
                return expr

    def parse_multiplicative(self) -> Expr:
        expr = self.parse_unary()
        while True:
            if self._accept(TokenKind.STAR):
                expr = Binary("*", expr, self.parse_unary())
            elif self._accept(TokenKind.SLASH):
                expr = Binary("/", expr, self.parse_unary())
            elif self._accept(TokenKind.PERCENT):
                expr = Binary("%", expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> Expr:
        if self._accept(TokenKind.MINUS):
            return Unary("-", self.parse_unary())
        if self._accept(TokenKind.PLUS):
            return self.parse_unary()
        if self._accept(TokenKind.NOT):
            return Unary("!", self.parse_unary())
        return self.parse_power()

    def parse_power(self) -> Expr:
        base = self.parse_primary()
        if self._accept(TokenKind.CARET):
            # right associative, binds tighter than unary minus on the left
            exponent = self.parse_unary()
            return Call("pow", (base, exponent))
        return base

    def parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._next()
            return Number(token.number_value)
        if token.kind is TokenKind.IDENT:
            self._next()
            if self._accept(TokenKind.LPAREN):
                args: List[Expr] = []
                while not self._check(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    if not self._accept(TokenKind.COMMA):
                        break
                self._expect(TokenKind.RPAREN)
                return Call(token.text, tuple(args))
            return Name(token.text)
        if self._accept(TokenKind.LPAREN):
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise SyntaxErrorEasyML(
            f"unexpected token {token.text!r} in expression",
            token.line, token.column, self.filename)


def parse_model(source: str, name: str = "model",
                filename: str = "<model>") -> ModelAST:
    """Parse EasyML source into a :class:`ModelAST`."""
    return Parser(source, name, filename).parse_model()


def parse_model_file(path, name: Optional[str] = None) -> ModelAST:
    """Parse an EasyML ``.model`` file; name defaults to the file stem."""
    import pathlib

    path = pathlib.Path(path)
    with open(path) as handle:
        source = handle.read()
    return parse_model(source, name or path.stem, str(path))
