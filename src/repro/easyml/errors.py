"""Diagnostics for EasyML source handling."""

from __future__ import annotations


class EasyMLError(Exception):
    """Base class for EasyML frontend errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0,
                 filename: str = "<model>"):
        self.line = line
        self.column = column
        self.filename = filename
        location = f"{filename}:{line}:{column}: " if line else ""
        super().__init__(f"{location}{message}")


class LexerError(EasyMLError):
    """Raised on characters or literals the lexer cannot tokenize."""


class SyntaxErrorEasyML(EasyMLError):
    """Raised when the token stream does not form a valid model."""


class SemanticError(EasyMLError):
    """Raised by the limpet frontend on inconsistent model descriptions."""
