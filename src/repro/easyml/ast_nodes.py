"""Abstract syntax tree for EasyML models.

The tree mirrors the language's two layers: an expression language
(C-like arithmetic, comparisons, calls, ternaries) and a statement
layer (assignments, declarations with markup, groups, if/else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expression nodes."""

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass(frozen=True)
class Number(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Name(Expr):
    identifier: str

    def __str__(self) -> str:
        return self.identifier


@dataclass(frozen=True)
class Unary(Expr):
    op: str                      # '-' or '!'
    operand: Expr

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Binary(Expr):
    op: str                      # '+', '-', '*', '/', '<', '==', 'and', ...
    lhs: Expr
    rhs: Expr

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Call(Expr):
    callee: str
    args: Tuple[Expr, ...]

    def children(self) -> Sequence[Expr]:
        return self.args

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.callee}({inner})"


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> Sequence[Expr]:
        return (self.cond, self.then, self.otherwise)

    def __str__(self) -> str:
        return f"({self.cond} ? {self.then} : {self.otherwise})"


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def free_names(expr: Expr) -> set:
    """Identifiers referenced anywhere inside ``expr``."""
    return {node.identifier for node in walk_expr(expr)
            if isinstance(node, Name)}


# ---------------------------------------------------------------------------
# Markup
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Markup:
    """One ``.name(arg, ...)`` clause attached to a declaration."""

    name: str
    args: Tuple[Union[float, str], ...] = ()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f".{self.name}({inner})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statement nodes."""


@dataclass
class Assign(Stmt):
    """``target = expr;`` — includes diff_/``_init`` forms."""

    target: str
    expr: Expr
    line: int = 0

    def __str__(self) -> str:
        return f"{self.target} = {self.expr};"


@dataclass
class Declare(Stmt):
    """``name; .markup(); ...`` — declares/annotates a variable."""

    name: str
    markups: Tuple[Markup, ...] = ()
    init: Optional[Expr] = None   # 'name = expr; .markup();' inline form
    line: int = 0

    def __str__(self) -> str:
        marks = " ".join(str(m) + ";" for m in self.markups)
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.name}{init}; {marks}".rstrip()


@dataclass
class Group(Stmt):
    """``group { decls } .markup();`` — shared markup for many variables."""

    members: Tuple[Declare, ...]
    markups: Tuple[Markup, ...] = ()
    line: int = 0

    def __str__(self) -> str:
        body = " ".join(str(m) for m in self.members)
        marks = "".join(str(m) for m in self.markups)
        return f"group{{ {body} }}{marks};"


@dataclass
class If(Stmt):
    """C-style conditional statement over assignments."""

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()
    line: int = 0

    def __str__(self) -> str:
        text = f"if ({self.cond}) {{ ... }}"
        if self.else_body:
            text += " else { ... }"
        return text


@dataclass
class ModelAST:
    """A parsed EasyML model: name plus ordered statements."""

    name: str
    statements: Tuple[Stmt, ...]

    def assignments(self) -> List[Assign]:
        """All top-level and nested assignments in source order."""
        found: List[Assign] = []

        def visit(stmts: Sequence[Stmt]) -> None:
            for stmt in stmts:
                if isinstance(stmt, Assign):
                    found.append(stmt)
                elif isinstance(stmt, If):
                    visit(stmt.then_body)
                    visit(stmt.else_body)

        visit(self.statements)
        return found

    def declarations(self) -> List[Declare]:
        """All declarations, with group members flattened (markup merged)."""
        found: List[Declare] = []
        for stmt in self.statements:
            if isinstance(stmt, Declare):
                found.append(stmt)
            elif isinstance(stmt, Group):
                for member in stmt.members:
                    merged = Declare(member.name,
                                     member.markups + stmt.markups,
                                     member.init, member.line)
                    found.append(merged)
        return found
