"""EasyML: the ionic-model DSL frontend (lexer, parser, AST)."""

from .ast_nodes import (Assign, Binary, Call, Declare, Expr, Group, If,
                        Markup, ModelAST, Name, Number, Stmt, Ternary, Unary,
                        free_names, walk_expr)
from .errors import EasyMLError, LexerError, SemanticError, SyntaxErrorEasyML
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse_model, parse_model_file

__all__ = [
    "Assign", "Binary", "Call", "Declare", "Expr", "Group", "If", "Markup",
    "ModelAST", "Name", "Number", "Stmt", "Ternary", "Unary", "free_names",
    "walk_expr", "EasyMLError", "LexerError", "SemanticError",
    "SyntaxErrorEasyML", "Lexer", "Token", "TokenKind", "tokenize", "Parser",
    "parse_model", "parse_model_file",
]
